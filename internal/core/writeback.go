package core

import (
	"math/bits"

	"repro/internal/cover"
	"repro/internal/isa"
)

// writeback retires up to WritebackWidth completed executions into the
// SU: results update matching tags (waking dependents), and resolved
// control transfers trigger selective mispredict recovery.
func (m *Machine) writeback() {
	if m.fault != nil || len(m.completions) == 0 {
		return
	}
	// Gather completions due this cycle, oldest first for determinism
	// (and so an older mispredict squashes younger CTs before they act).
	due := m.wbDue[:0]
	rest := m.completions[:0]
	for _, ei := range m.completions {
		e := &m.ents[ei]
		if e.squashed {
			m.sqComp--
			e.where &^= inCompletions
			m.release(e) // dropped; its block slot is a hole
			continue
		}
		if e.completeAt <= m.now {
			// Fault injection: hold the result off the writeback bus for a
			// few extra cycles, consulting the schedule once per entry.
			if inj := m.cfg.Injector; inj != nil && !e.wbDelayed {
				e.wbDelayed = true
				if d := inj.WritebackDelay(m.now, e.tag); d > 0 {
					m.stats.Faults.Add(ChanWritebackDelay)
					e.completeAt = m.now + d
					rest = append(rest, ei)
					continue
				}
			}
			due = append(due, ei)
		} else {
			rest = append(rest, ei)
		}
	}
	m.wbDue = due
	m.sortIdxByTag(due)
	if len(due) > m.cfg.WritebackWidth {
		rest = append(rest, due[m.cfg.WritebackWidth:]...)
		due = due[:m.cfg.WritebackWidth]
		if m.cov != nil {
			m.cov.Hit(cover.EvWritebackSaturated)
		}
	}
	m.completions = rest

	for _, ei := range due {
		e := &m.ents[ei]
		if e.squashed {
			m.sqComp--
			e.where &^= inCompletions
			m.release(e) // squashed by an older CT written back just before
			continue
		}
		e.state = stDone
		e.wbCycle = m.now
		m.noteDone(e)
		if m.Trace != nil {
			m.trace("wb       %v = %#x", e, e.result)
		}
		if e.writesReg() {
			m.broadcast(e)
			if p := m.physReg(e.thread, e.inst.Rd); p >= 0 && m.busyReg[p] == e.tag+1 {
				m.busyReg[p] = 0
			}
		}
		if e.inst.Op.IsCT() {
			e.resolved = true
			m.handleResolvedCT(e)
		}
		e.where &^= inCompletions
		m.release(e) // consumed from the completion queue
	}
}

// broadcast delivers e's result to every waiting operand with its tag.
// Only same-thread waiting entries with an unready source can match
// (rename construction: an operand's tag always names a same-thread
// producer), so the scan is the unready ∩ thread bitset — a handful of
// word operations on the common all-ready cycle instead of a walk of
// the whole window.
func (m *Machine) broadcast(e *suEntry) {
	readyAt := m.now
	if !m.cfg.Bypassing {
		readyAt++
	}
	tb := m.threadBits[e.thread]
	for wi, uw := range m.unreadyBits {
		g := uw & tb[wi]
		for g != 0 {
			pos := int32((wi << 6) + bits.TrailingZeros64(g))
			g &= g - 1
			w := &m.ents[m.entryAt(pos)]
			still := false
			for i := 0; i < w.nsrc; i++ {
				if !w.src[i].ready {
					if w.src[i].tag == e.tag {
						w.src[i] = operand{ready: true, value: e.result, readyAt: readyAt}
					} else {
						still = true
					}
				}
			}
			if !still {
				bsClear(m.unreadyBits, pos)
			}
		}
	}
}

// handleResolvedCT checks a control transfer against its fetch-time
// prediction and performs selective recovery on a mispredict: only
// younger entries of the same thread are discarded (paper §3.4).
func (m *Machine) handleResolvedCT(e *suEntry) {
	if e.inst.Op == isa.HALT {
		return
	}
	correct := e.actualTaken == e.predTaken &&
		(!e.actualTaken || e.actualTarget == e.predTarget)
	if correct {
		// Fault injection: force a correctly predicted CT through the full
		// recovery path anyway. The redirect target is the true next PC,
		// so the squash-and-refetch is timing-only.
		if inj := m.cfg.Injector; inj != nil && inj.SpuriousSquash(m.now, e.tag) {
			m.stats.Faults.Add(ChanSpuriousSquash)
			if m.Trace != nil {
				m.trace("spurious squash %v (injected)", e)
			}
			m.squashYounger(e)
			if e.actualTaken {
				m.pc[e.thread] = e.actualTarget
			} else {
				m.pc[e.thread] = e.pc + 4
			}
			m.reviveFetch(e.thread)
		}
		return
	}
	m.stats.Mispredicts++
	if m.cov != nil {
		m.cov.Hit(cover.EvMispredictSquash)
	}
	if m.Trace != nil {
		m.trace("mispredict %v (actual taken=%v target=%#x)", e, e.actualTaken, e.actualTarget)
	}
	m.squashYounger(e)
	// Redirect the thread; the corrected PC is visible to fetch this
	// cycle (the IU receives the resolution on the writeback bus).
	if e.actualTaken {
		m.pc[e.thread] = e.actualTarget
	} else {
		m.pc[e.thread] = e.pc + 4
	}
	// A squashed HALT must not keep the thread's fetch stopped.
	m.reviveFetch(e.thread)
}

// reviveFetch clears a thread's HALT fetch stop after a squash.
func (m *Machine) reviveFetch(t int) {
	if m.fetchStopped[t] {
		if m.cov != nil {
			m.cov.Hit(cover.EvSquashRevivedFetch)
		}
		m.fetchStopped[t] = false
	}
}

// squashYounger discards all younger same-thread entries: SU entries,
// the fetch latch, store buffer slots, and scoreboard claims. The
// register-producer table's slice for the thread is rebuilt afterwards
// (a squash invalidates an unknown subset of it).
func (m *Machine) squashYounger(ct *suEntry) {
	survivors, spared := 0, false
	for _, b := range m.su {
		if b.thread != ct.thread {
			if m.cov != nil && !spared && bsGroup(m.liveBits, b.bi) != 0 {
				spared = true
			}
			continue
		}
		for _, ei := range b.entries {
			if ei < 0 {
				continue
			}
			e := &m.ents[ei]
			if !e.valid || e.squashed {
				continue
			}
			if e.tag <= ct.tag {
				survivors++
				continue
			}
			m.noteSquashed(e)
			e.squashed = true
			// Record the squasher; the invariant checker verifies
			// containment (same thread, older tag) from this.
			e.squashedBy = ct.tag
			m.stats.Squashed++
			if e.writesReg() {
				if p := m.physReg(e.thread, e.inst.Rd); p >= 0 && m.busyReg[p] == e.tag+1 {
					m.busyReg[p] = 0
				}
			}
		}
	}
	if m.cov != nil {
		// The squashing CT itself is among the survivors; >= BlockSize
		// means at least a block's worth of older same-thread work was
		// selectively spared.
		if survivors >= BlockSize {
			m.cov.Hit(cover.EvSquashSurvivors)
		}
		if spared {
			m.cov.Hit(cover.EvSquashSparesOthers)
		}
	}
	// Uncommitted stores by squashed entries free their buffer slots.
	keep := m.storeBuf[:0]
	for _, soi := range m.storeBuf {
		so := &m.sops[soi]
		if m.ents[so.entry].squashed && !so.committed {
			if m.cov != nil {
				m.cov.Hit(cover.EvSquashKilledStore)
			}
			m.freeStoreOp(so)
			continue
		}
		keep = append(keep, soi)
	}
	m.storeBuf = keep
	// The latch, if it holds this thread, is younger than any SU entry.
	if m.latch != nil && m.latch.thread == ct.thread {
		if m.cov != nil {
			m.cov.Hit(cover.EvSquashKilledLatch)
		}
		m.latch = nil
	}
	m.rebuildRegProd(ct.thread)
	// Pending loads and completions drop squashed entries lazily.
}
