package core

import (
	"fmt"
	"strings"
)

// FaultKind classifies a structured machine fault.
type FaultKind int

const (
	// FaultRunaway: the run exceeded Config.MaxCycles without finishing.
	FaultRunaway FaultKind = iota
	// FaultDeadlock: the forward-progress watchdog saw no commit and no
	// store drain for Config.Watchdog cycles while work was outstanding.
	FaultDeadlock
	// FaultInvariant: the per-cycle invariant checker (Config.
	// CheckInvariants) found the machine state inconsistent.
	FaultInvariant
	// FaultMem: a committed memory reference carried an illegal address
	// (outside its segment, or unaligned) — a program error, reported
	// with the faulting cycle, thread, and PC.
	FaultMem
	// FaultInternal: the model contradicted itself (e.g. a committed
	// store without a store-buffer entry). Always a simulator bug.
	FaultInternal
)

func (k FaultKind) String() string {
	switch k {
	case FaultRunaway:
		return "runaway"
	case FaultDeadlock:
		return "deadlock"
	case FaultInvariant:
		return "invariant violation"
	case FaultMem:
		return "memory fault"
	case FaultInternal:
		return "internal fault"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ThreadState is one thread's architectural front-end state at the time
// of a fault.
type ThreadState struct {
	PC           uint32
	Halted       bool
	FetchStopped bool
}

// MachineError is the structured diagnostic Machine.Run returns instead
// of panicking: what went wrong, when, where in the pipeline, which
// thread and instruction (when attributable), and a dump of the
// scheduling unit, store buffer, and cache at the moment of the fault.
type MachineError struct {
	Kind   FaultKind
	Cycle  uint64
	Phase  string // pipeline phase that detected the fault
	Thread int    // offending thread, or -1 when not attributable
	PC     uint32 // offending instruction's PC, when known
	Addr   uint32 // faulting address, for memory faults
	Reason string // one-line description

	Threads  []ThreadState // per-thread PCs at the fault
	Snapshot string        // SU, store buffer, and cache dump
}

// Summary renders the one-line form (kind, cycle, phase, attribution).
func (e *MachineError) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %v at cycle %d", e.Kind, e.Cycle)
	if e.Phase != "" {
		fmt.Fprintf(&b, " in %s", e.Phase)
	}
	if e.Thread >= 0 {
		fmt.Fprintf(&b, " (thread %d, pc %#x)", e.Thread, e.PC)
	}
	if e.Kind == FaultMem {
		fmt.Fprintf(&b, " addr %#x", e.Addr)
	}
	fmt.Fprintf(&b, ": %s", e.Reason)
	return b.String()
}

// Error renders the summary followed by the full state dump.
func (e *MachineError) Error() string {
	var b strings.Builder
	b.WriteString(e.Summary())
	for t, ts := range e.Threads {
		fmt.Fprintf(&b, "\n  thread %d: pc=%#x halted=%v stopped=%v",
			t, ts.PC, ts.Halted, ts.FetchStopped)
	}
	if e.Snapshot != "" {
		b.WriteString("\n")
		b.WriteString(e.Snapshot)
	}
	return b.String()
}

// failf records the machine's first fault; later faults are ignored
// (the machine is frozen once faulted, so they would be echoes). thread
// may be -1 when the fault is not attributable to one thread.
func (m *Machine) failf(kind FaultKind, phase string, thread int, pc uint32, format string, args ...any) {
	if m.fault != nil {
		return
	}
	e := &MachineError{
		Kind:    kind,
		Cycle:   m.now,
		Phase:   phase,
		Thread:  thread,
		PC:      pc,
		Reason:  fmt.Sprintf(format, args...),
		Threads: make([]ThreadState, m.cfg.Threads),
	}
	for t := 0; t < m.cfg.Threads; t++ {
		e.Threads[t] = ThreadState{PC: m.pc[t], Halted: m.halted[t], FetchStopped: m.fetchStopped[t]}
	}
	e.Snapshot = m.dump()
	m.fault = e
}

// failMem records a memory fault for entry e detected in the given
// pipeline phase.
func (m *Machine) failMem(phase string, e *suEntry, format string, args ...any) {
	if m.fault != nil {
		return
	}
	m.failf(FaultMem, phase, e.thread, e.pc, format, args...)
	m.fault.Addr = e.addr
}

// Err returns the machine's fault, or nil. Cycle-stepping callers check
// it between Cycle calls; Run surfaces it directly.
func (m *Machine) Err() error {
	if m.fault == nil {
		return nil
	}
	return m.fault
}

// FaultInjector perturbs timing-only microarchitectural state for
// robustness testing: every method must leave architectural results
// unchanged (memory and registers still match the functional reference
// simulator). Implementations must be deterministic pure functions of
// their arguments and safe for concurrent use by multiple machines —
// the experiment runner shares one injector across parallel cells.
// internal/fault provides the standard seeded implementation.
type FaultInjector interface {
	// CacheDelay is consulted once per architectural D-cache access
	// (first attempt only); a non-zero return forces the access to
	// behave as a miss that completes after that many cycles, without
	// touching line state.
	CacheDelay(now uint64, addr uint32, write bool) uint64
	// WritebackDelay is consulted once per completed execution; a
	// non-zero return holds the result off the writeback bus for that
	// many extra cycles.
	WritebackDelay(now uint64, tag uint64) uint64
	// FlipPredictor is consulted once per cycle; ok=true flips the
	// direction of one BTB entry's saturating counter (slot is reduced
	// modulo the BTB size).
	FlipPredictor(now uint64) (slot int, ok bool)
	// SpuriousSquash is consulted when a correctly predicted control
	// transfer resolves; true forces a same-thread squash-and-refetch
	// anyway, exactly as if it had mispredicted.
	SpuriousSquash(now uint64, tag uint64) bool
	// SyncDelay is consulted once per synchronization-controller
	// request (FLDW/FAI with a valid flag address); a non-zero return
	// holds the grant for that many cycles before the primitive may
	// execute — a delayed lock grant.
	SyncDelay(now uint64, addr uint32, rmw bool) uint64
	// SpuriousWakeup is consulted once per FLDW grant; true makes the
	// thread discard the delivered value and re-request the flag a few
	// cycles later (the re-read supplies the architectural result).
	SpuriousWakeup(now uint64, tag uint64) bool
	// FetchMisdecide is consulted once per successful fetch decision;
	// true redirects the slot to a different eligible thread than the
	// one the configured policy chose.
	FetchMisdecide(now uint64) bool
	// FetchBlock is consulted once per fetch cycle with a free latch;
	// true steals the slot — no thread fetches this cycle.
	FetchBlock(now uint64) bool
	// StoreBufferHold is consulted once per cycle; a positive return
	// makes that many store-buffer slots unavailable to newly issuing
	// stores for the cycle. The core caps the hold at StoreBuffer -
	// BlockSize so the deadlock-avoidance reservation argument (a block's
	// worth of slots can always be claimed) still holds.
	StoreBufferHold(now uint64) int
	// CommitWindowShrink is consulted once per commit cycle when the
	// flexible window exceeds one block; a positive return shrinks the
	// window by that many blocks for the cycle (floor 1 — bottom-block
	// commit stays available, so only timing can change).
	CommitWindowShrink(now uint64) int
	// String identifies the schedule (seed and rates) for cache keys
	// and diagnostics.
	String() string
}

// Injection channel names, the keys of Stats.Faults. One name per
// perturbation the injector can apply, so a run's statistics show
// exactly which mechanisms were attacked and how often.
const (
	ChanCacheDelay     = "cache-delay"     // forced D-cache miss delays
	ChanWritebackDelay = "writeback-delay" // results held off the writeback bus
	ChanPredictorFlip  = "predictor-flip"  // BTB counters inverted
	ChanSpuriousSquash = "spurious-squash" // correct CTs forced through recovery
	ChanSyncDelay      = "sync-delay"      // sync-controller grants delayed
	ChanSyncWakeup     = "sync-wakeup"     // FLDW grants spuriously woken
	ChanFetchMisdecide = "fetch-misdecide" // fetch-policy decisions overridden
	ChanFetchBlock     = "fetch-block"     // fetch slots stolen outright
	ChanStoreSlotHold  = "store-slot-hold" // store-buffer slots held from new stores
	ChanCommitShrink   = "commit-shrink"   // flexible-commit window shrunk for a cycle
)

// FaultChannels lists every injection channel name, sorted.
func FaultChannels() []string {
	return []string{
		ChanCacheDelay, ChanCommitShrink, ChanFetchBlock, ChanFetchMisdecide,
		ChanPredictorFlip, ChanSpuriousSquash, ChanStoreSlotHold,
		ChanSyncDelay, ChanSyncWakeup, ChanWritebackDelay,
	}
}

// FaultCounts counts injected perturbations per channel, keyed by the
// Chan* names above. The zero value is usable; Add allocates lazily, so
// a run without an injector carries a nil map.
type FaultCounts map[string]uint64

// Add records one injection on the named channel.
func (c *FaultCounts) Add(channel string) {
	if *c == nil {
		*c = FaultCounts{}
	}
	(*c)[channel]++
}

// Total sums the injections across all channels.
func (c FaultCounts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}
