package core

import (
	"fmt"
	"strings"
	"time"
)

// Phase identifies one stage of Cycle for the opt-in wall-clock
// breakdown (Config.PhaseTiming, surfaced as Stats.PhaseTime and the
// CLIs' -timing flag). Memory covers store drain and load service;
// Other covers cache ticks, fault injection, the paranoid invariant
// walk, the watchdog, and per-cycle statistics.
type Phase int

const (
	PhaseCommit Phase = iota
	PhaseMemory
	PhaseWriteback
	PhaseIssue
	PhaseDispatch
	PhaseFetch
	PhaseOther
	NumPhases
)

var phaseNames = [NumPhases]string{
	"commit", "memory", "writeback", "issue", "dispatch", "fetch", "other",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return phaseNames[p]
}

// PhaseTimes accumulates wall-clock time per pipeline phase.
type PhaseTimes [NumPhases]time.Duration

// Add accumulates o into pt (used to aggregate across machines).
func (pt *PhaseTimes) Add(o PhaseTimes) {
	for i := range pt {
		pt[i] += o[i]
	}
}

// Total returns the summed wall-clock time across all phases.
func (pt PhaseTimes) Total() time.Duration {
	var sum time.Duration
	for _, d := range pt {
		sum += d
	}
	return sum
}

// String renders the breakdown as one line per phase with wall-share
// percentages, widest share first preserved in pipeline order.
func (pt PhaseTimes) String() string {
	total := pt.Total()
	var b strings.Builder
	for p := Phase(0); p < NumPhases; p++ {
		share := 0.0
		if total > 0 {
			share = 100 * float64(pt[p]) / float64(total)
		}
		fmt.Fprintf(&b, "%-10s %12v %6.2f%%\n", p, pt[p].Round(time.Microsecond), share)
	}
	fmt.Fprintf(&b, "%-10s %12v\n", "total", total.Round(time.Microsecond))
	return b.String()
}

// cycleTimed is Cycle with a wall-clock stopwatch between stages. It
// must mirror Cycle's stage order exactly (commit first; see Cycle).
// The duplication keeps the default path free of timer reads.
func (m *Machine) cycleTimed() {
	m.now++
	t0 := time.Now()
	m.dcache.Tick(m.now)
	if m.icache != nil {
		m.icache.Tick(m.now)
	}
	if m.cfg.Injector != nil {
		m.injectPredictorFlip()
		m.injectStoreBufferHold()
	}
	t0 = m.phaseAdd(PhaseOther, t0)
	m.commit()
	t0 = m.phaseAdd(PhaseCommit, t0)
	m.drainStores()
	m.serviceLoads()
	t0 = m.phaseAdd(PhaseMemory, t0)
	m.writeback()
	t0 = m.phaseAdd(PhaseWriteback, t0)
	m.issue()
	t0 = m.phaseAdd(PhaseIssue, t0)
	m.dispatch()
	t0 = m.phaseAdd(PhaseDispatch, t0)
	m.fetch()
	t0 = m.phaseAdd(PhaseFetch, t0)
	if m.fault == nil && m.cfg.CheckInvariants {
		if err := m.CheckInvariants(); err != nil {
			m.failf(FaultInvariant, "invariant check", -1, 0, "%v", err)
		}
	}
	m.watchdogCheck()
	m.cycleStats()
	m.phaseAdd(PhaseOther, t0)
}

// phaseAdd charges the time since t0 to phase p and returns the new
// stopwatch origin.
func (m *Machine) phaseAdd(p Phase, t0 time.Time) time.Time {
	now := time.Now()
	m.phaseTime[p] += now.Sub(t0)
	return now
}
