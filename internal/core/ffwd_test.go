package core

import (
	"reflect"
	"testing"

	"repro/internal/asm"
)

// missBoundWorkload is a single-thread pointer-stride walk over a
// footprint much larger than the default 8 KB cache, so steady state is
// one cache miss after another: the machine spends most cycles with
// nothing to do but wait, which is exactly the regime the idle-cycle
// fast-forward targets.
const missBoundWorkload = `
main: li   r1, data
      li   r2, 512         ; words to touch (8 KB span at stride 16B)
loop: lw   r3, 0(r1)
      add  r4, r4, r3
      addi r1, r1, 16
      addi r2, r2, -1
      bne  r2, r0, loop
      li   r5, out
      sw   r4, 0(r5)
      halt
.data
out:  .word 0
data: .space 8192
`

func ffWorkload(t testing.TB) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Threads = 1
	cfg.Cache.SizeBytes = 1024 // shrink L1 so the walk misses constantly
	cfg.Cache.MissPenalty = 40 // long stalls: plenty of inert cycles
	return cfg
}

// TestFastForwardEngagesAndAgrees runs the miss-bound workload with the
// fast-forward off and on: identical cycle counts and stats, and the
// fast-forwarded run must have batched a meaningful share of its cycles
// (this is the in-package smoke; the full 204-schedule differential
// lives in sdsp/ffdiff_test.go).
func TestFastForwardEngagesAndAgrees(t *testing.T) {
	obj, err := asm.Assemble(missBoundWorkload)
	if err != nil {
		t.Fatal(err)
	}
	run := func(noFF bool) (*Stats, uint64) {
		cfg := ffWorkload(t)
		cfg.NoFastForward = noFF
		m, err := New(obj, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("run (noFF=%v): %v", noFF, err)
		}
		return st, m.FFSkipped()
	}
	base, baseSkip := run(true)
	ff, ffSkip := run(false)
	if baseSkip != 0 {
		t.Fatalf("NoFastForward run skipped %d cycles", baseSkip)
	}
	if base.Cycles != ff.Cycles {
		t.Fatalf("cycle counts diverge: plain %d, fast-forward %d", base.Cycles, ff.Cycles)
	}
	if !reflect.DeepEqual(base, ff) {
		t.Fatalf("stats diverge:\nplain:        %+v\nfast-forward: %+v", base, ff)
	}
	if ffSkip == 0 {
		t.Fatal("fast-forward never engaged on a miss-bound workload")
	}
	if frac := float64(ffSkip) / float64(ff.Cycles); frac < 0.25 {
		t.Errorf("fast-forward batched only %.1f%% of a miss-bound run", 100*frac)
	}
}

// TestFastForwardAllocFree pins the allocation behavior of the
// fast-forwarded run loop: the bitset precondition scans, the FFProbe
// calls, and the light-cycle replay must all run without allocating,
// like the plain per-cycle path they replace. Machines are built ahead
// of time so only Run-loop allocations are measured (AllocsPerRun
// invokes the function runs+1 times: one warm-up plus the measured
// runs).
func TestFastForwardAllocFree(t *testing.T) {
	obj, err := asm.Assemble(missBoundWorkload)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 5
	machines := make([]*Machine, 0, runs+1)
	for i := 0; i <= runs; i++ {
		cfg := ffWorkload(t)
		m, err := New(obj, cfg)
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)
	}
	next := 0
	limit := machines[0].cfg.maxCycles()
	avg := testing.AllocsPerRun(runs, func() {
		m := machines[next]
		next++
		for !m.Done() && m.fault == nil {
			if m.fastForward(limit) {
				continue
			}
			m.Cycle()
		}
	})
	for _, m := range machines {
		if m.fault != nil {
			t.Fatalf("measured run faulted: %v", m.fault)
		}
		if m.FFSkipped() == 0 {
			t.Fatal("fast-forward never engaged during the allocation measurement")
		}
	}
	if avg != 0 {
		t.Errorf("fast-forwarded run loop allocates %.2f objects/run, want 0", avg)
	}
}
