package core

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/cover"
	"repro/internal/isa"
	"repro/internal/loader"
)

// issue is the dynamic scheduler: it scans the SU bottom-to-top (oldest
// first) and sends ready instructions to free functional units, up to
// IssueWidth per cycle. It is thread-blind — dependencies are entirely
// expressed by tags — exactly as the paper argues. The scan walks the
// waiting-entry bitset one block group at a time, so cycles with no
// issue candidates cost a counter test and blocks with no waiting
// entries cost one shift.
func (m *Machine) issue() {
	if m.fault != nil || m.waitCnt == 0 {
		return
	}
	issued := 0
	firstThread := -1
	crossed := false
scan:
	for _, b := range m.su {
		g := bsGroup(m.waitBits, b.bi)
		for g != 0 {
			s := bits.TrailingZeros64(g)
			g &= g - 1
			if issued >= m.cfg.IssueWidth {
				break scan
			}
			e := &m.ents[b.entries[s]]
			if !e.ready(m.now) {
				continue
			}
			if m.tryIssue(e) {
				if m.Trace != nil {
					m.trace("issue    %v -> %v unit %d", e, e.inst.Op.FUClass(), e.fuUnit)
				}
				issued++
				if firstThread < 0 {
					firstThread = e.thread
				} else if e.thread != firstThread {
					crossed = true
				}
			}
		}
	}
	if m.cov != nil {
		if issued >= m.cfg.IssueWidth {
			m.cov.Hit(cover.EvIssueWidthSaturated)
		}
		if crossed {
			m.cov.Hit(cover.EvIssueCrossThread)
		}
	}
}

// spuriousWakeupBackoff is how many cycles an FLDW retries after an
// injected spurious wakeup discarded its delivered value.
const spuriousWakeupBackoff = 4

// toCompletions moves an issued entry onto the completion queue.
func (m *Machine) toCompletions(e *suEntry) {
	m.retain(e)
	e.where |= inCompletions
	m.completions = append(m.completions, e.idx)
}

// tryIssue applies per-class constraints, acquires a unit, and begins
// execution. Reports whether the instruction left the window.
func (m *Machine) tryIssue(e *suEntry) bool {
	op := e.inst.Op
	class := op.FUClass()

	switch class {
	case isa.ClassLoad:
		// Acquire ordering: a load may not issue past an older unresolved
		// same-thread sync primitive. Without this, a load speculated past
		// a flag-spin exit can capture stale data that survives because
		// the spin exit turns out to be correctly predicted.
		if m.olderUnresolvedSync(e) {
			m.stats.LoadBlocked++
			if m.cov != nil {
				m.cov.Hit(cover.EvLoadBlockedSyncOrder)
			}
			return false
		}
		// Alias comparisons run on physical addresses throughout: issued
		// stores latch physical addresses, and same-thread translation is
		// a constant offset, so equality is unchanged from virtual space.
		addr := m.physAddr(e.thread, isa.EffAddr(e.src[0].value, e.inst.Imm))
		v, src, blocked := m.forwardFromStore(e, addr)
		if blocked {
			m.stats.LoadBlocked++
			if m.cov != nil {
				m.cov.Hit(cover.EvLoadBlockedAlias)
			}
			return false
		}
		if src != nil {
			// An older store to the same address supplies the value. With
			// the StoreForwarding extension any store forwards. Under the
			// paper's restricted policy only a store in the load's own
			// commit block may forward — without that, a same-block
			// store→load alias deadlocks (the load waits for the drain,
			// the drain waits for commit, commit waits for the load); a
			// cross-block alias waits for the drain as the paper says.
			// Block identity is compared by id: a committed store's block
			// has left the SU and its struct may already be recycled.
			if !m.cfg.StoreForwarding && src.blkID != e.blkID {
				m.stats.LoadBlocked++
				if m.cov != nil {
					m.cov.Hit(cover.EvLoadBlockedCrossAlias)
				}
				return false
			}
			pool := &m.pools[isa.ClassLoad]
			unit := pool.tryAcquire(m.now)
			if unit < 0 {
				if m.cov != nil {
					m.cov.Hit(cover.EvIssueFUExhausted)
				}
				return false
			}
			e.state = stIssued
			m.noteIssued(e)
			e.fuUnit = unit
			e.addr = addr
			e.addrValid = true
			e.result = v
			e.completeAt = pool.issue(unit, m.now)
			m.toCompletions(e)
			m.stats.LoadsForwarded++
			if m.cov != nil {
				if src.blkID == e.blkID {
					m.cov.Hit(cover.EvLoadForwardSameBlock)
				} else {
					m.cov.Hit(cover.EvLoadForwardCross)
				}
			}
			return true
		}
	case isa.ClassStore:
		// Deadlock avoidance: a store may take a slot only if enough free
		// slots remain for every waiting store at or below its block.
		// Slots free only when a store drains, draining needs its block to
		// commit, and a block commits only once ALL its stores have
		// issued — so if younger stores (or even an older sibling) exhaust
		// the buffer while any store of an older block still waits, the
		// machine wedges. Reserving per waiting store guarantees the
		// bottom block can always issue all of its stores (Validate keeps
		// StoreBuffer >= BlockSize), commit, and drain.
		// Fault injection may hold some slots for a cycle (m.sbHeld),
		// capped so the effective buffer never drops below BlockSize and
		// the reservation argument above still goes through.
		free := m.cfg.StoreBuffer - len(m.storeBuf) - m.sbHeld
		if free <= m.waitingStoresBelow(e) {
			m.stats.StoreBufferFull++
			if m.cov != nil {
				m.cov.Hit(cover.EvStoreBufferFull)
			}
			return false
		}
	case isa.ClassSync:
		// FAI has a side effect, so it must issue non-speculatively.
		if op == isa.FAI && m.olderUnresolvedCT(e) {
			if m.cov != nil {
				m.cov.Hit(cover.EvFAIBlockedSpec)
			}
			return false
		}
		// Release ordering: sync reads execute at issue and would bypass
		// an older same-thread FSTW still queued in the store buffer
		// (e.g. the barrier's count reset), reading a stale flag. Fence
		// until older flag stores have drained.
		if m.olderPendingFlagStore(e) {
			if m.cov != nil {
				m.cov.Hit(cover.EvSyncFencedFlagStore)
			}
			return false
		}
		// Fault injection: the controller may hold the grant (delayed
		// lock grant), and an FLDW grant may arrive as a spurious wakeup
		// — the thread reads the flag, discards the value, and retries a
		// few cycles later. Timing-only: the retry's read supplies the
		// architectural result. FAI is never woken spuriously (its
		// read-modify-write must execute exactly once).
		if m.cfg.Injector != nil {
			if e.syncHoldUntil > m.now {
				return false
			}
			addr := isa.EffAddr(e.src[0].value, e.inst.Imm)
			pa := m.physAddr(e.thread, addr)
			if !e.syncRolled {
				e.syncRolled = true
				if d := m.sync.GrantDelay(m.now, pa, op == isa.FAI); d > 0 {
					e.syncHoldUntil = m.now + d
					if m.Trace != nil {
						m.trace("sync hold %v for %d cycles (injected)", e, d)
					}
					return false
				}
			}
			if op == isa.FLDW && !e.syncWoken {
				e.syncWoken = true
				if m.cfg.Injector.SpuriousWakeup(m.now, e.tag) {
					m.stats.Faults.Add(ChanSyncWakeup)
					if loader.IsFlagAddr(addr) && (addr&3) == 0 {
						_, _ = m.sync.Read(pa) // woken early: read and discard
					}
					e.syncHoldUntil = m.now + spuriousWakeupBackoff
					if m.Trace != nil {
						m.trace("spurious wakeup %v (injected)", e)
					}
					return false
				}
			}
		}
	}

	pool := &m.pools[class]
	unit := pool.tryAcquire(m.now)
	if unit < 0 {
		if m.cov != nil {
			m.cov.Hit(cover.EvIssueFUExhausted)
		}
		return false
	}
	e.state = stIssued
	m.noteIssued(e)
	e.fuUnit = unit

	a := e.src[0].value
	bv := e.src[1].value

	switch class {
	case isa.ClassLoad:
		// Addresses are validated in the thread's virtual space, then
		// latched physical (slot-translated) — including bad addresses, so
		// every alias comparison stays in one address space.
		va := isa.EffAddr(a, e.inst.Imm)
		e.addr = m.physAddr(e.thread, va)
		e.addrValid = true
		if !loader.IsDataAddr(va) || (va&3) != 0 {
			// Wrong-path garbage address: complete with a dummy value and
			// flag it; committing such a load is a program error.
			e.badAddr = true
			e.result = 0
			if m.cov != nil {
				m.cov.Hit(cover.EvBadAddrSpeculative)
			}
			e.completeAt = pool.issue(unit, m.now)
			m.toCompletions(e)
			return true
		}
		// The load holds its unit until the cache responds.
		pool.issue(unit, m.now)
		pool.hold(unit, e)
		m.heldLoads++
		m.retain(e)
		e.where |= inPendingLoads
		m.pendingLoads = append(m.pendingLoads, e.idx)
		return true

	case isa.ClassStore:
		va := isa.EffAddr(a, e.inst.Imm)
		e.addr = m.physAddr(e.thread, va)
		e.addrValid = true
		e.storeData = bv // FmtB: src[1] is rs2, the store data
		// SW must land in the data segment, FSTW in the flag segment —
		// the same rule funcsim enforces, so the invariant checker's slot
		// containment assertion holds for every non-bad store. badAddr is
		// never consulted on timing paths (only commit/drain), so marking
		// is timing-neutral.
		bad := (va & 3) != 0
		if op == isa.FSTW {
			bad = bad || !loader.IsFlagAddr(va)
		} else {
			bad = bad || !loader.IsDataAddr(va)
		}
		if bad {
			e.badAddr = true
			if m.cov != nil {
				m.cov.Hit(cover.EvBadAddrSpeculative)
			}
		}
		e.completeAt = pool.issue(unit, m.now)
		m.storeBuf = append(m.storeBuf, m.newStoreOp(e))
		m.toCompletions(e)
		if m.cov != nil && len(m.storeBuf) == m.cfg.StoreBuffer {
			m.cov.Hit(cover.EvStoreBufferSaturated)
		}
		return true

	case isa.ClassSync:
		va := isa.EffAddr(a, e.inst.Imm)
		e.addr = m.physAddr(e.thread, va)
		e.addrValid = true
		if !loader.IsFlagAddr(va) || (va&3) != 0 {
			e.badAddr = true
			e.result = 0
			if m.cov != nil {
				m.cov.Hit(cover.EvBadAddrSpeculative)
			}
		} else if op == isa.FAI {
			v, err := m.sync.FetchAdd(e.addr)
			if err != nil {
				// Unreachable: the address was validated above. A rejection
				// here means the model contradicts the controller.
				m.failf(FaultInternal, "issue", e.thread, e.pc,
					"sync controller rejected validated FAI address %#x: %v", e.addr, err)
			}
			e.result = v
			if m.cov != nil {
				m.covFAIObserve(e.thread, e.addr)
			}
		} else { // FLDW
			v, err := m.sync.Read(e.addr)
			if err != nil {
				m.failf(FaultInternal, "issue", e.thread, e.pc,
					"sync controller rejected validated FLDW address %#x: %v", e.addr, err)
			}
			e.result = v
			if m.cov != nil {
				m.covFLDWObserve(e.thread, e.addr, v)
			}
		}
		e.completeAt = pool.issue(unit, m.now)
		m.toCompletions(e)
		return true

	case isa.ClassCT:
		m.resolveCT(e, a)
		e.completeAt = pool.issue(unit, m.now)
		m.toCompletions(e)
		return true
	}

	// Computational classes: the result is a pure function of operands
	// (TID and NTH read machine identity instead).
	switch op {
	case isa.TID:
		// Virtual thread identity: a thread's rank within its slot's
		// group, so an SPMD program partitions its own group's work
		// identically whether it runs solo or inside a mix.
		e.result = uint32(m.vtid[e.thread])
	case isa.NTH:
		e.result = uint32(m.vnth[e.thread])
	case isa.NOP:
		e.result = 0
	default:
		e.result = isa.EvalOp(op, a, bv)
	}
	e.completeAt = pool.issue(unit, m.now)
	m.toCompletions(e)
	return true
}

// resolveCT computes a control transfer's actual outcome (visible at
// writeback, when mispredict recovery runs).
func (m *Machine) resolveCT(e *suEntry, rs1 uint32) {
	switch {
	case e.inst.Op.IsBranch():
		e.actualTaken = isa.BranchTaken(e.inst.Op, e.src[0].value, e.src[1].value)
		if e.actualTaken {
			e.actualTarget = isa.CTTarget(e.inst, e.pc, 0)
		}
	case e.inst.Op == isa.JAL:
		e.result = e.pc + 4
		e.actualTaken = true
		e.actualTarget = isa.CTTarget(e.inst, e.pc, 0)
	case e.inst.Op == isa.JALR:
		e.result = e.pc + 4
		e.actualTaken = true
		e.actualTarget = isa.CTTarget(e.inst, e.pc, rs1)
	case e.inst.Op == isa.HALT:
		// No redirect; committing it retires the thread.
	}
}

// waitingStoresBelow counts the un-issued stores (other than e itself)
// in e's block and every block below it — the stores whose buffer slots
// must stay reservable for the machine to keep draining. Per block this
// is a popcount of waiting ∩ store-class bits; e itself is a waiting
// store at or below its own block, hence the -1.
func (m *Machine) waitingStoresBelow(e *suEntry) int {
	n := 0
	for _, b := range m.su {
		w := bsGroup(m.waitBits, b.bi)
		if w != 0 {
			n += bits.OnesCount64(w & (bsGroup(m.swBits, b.bi) | bsGroup(m.fstwBits, b.bi)))
		}
		if b == e.blk {
			break
		}
	}
	return n - 1
}

// olderUnresolvedCT reports whether any older same-thread control
// transfer in the SU has not resolved yet. The per-thread unresolved-CT
// counter gates the scan (zero for every thread between branches).
func (m *Machine) olderUnresolvedCT(e *suEntry) bool {
	if m.ctUnres[e.thread] == 0 {
		return false
	}
	for wi, w := range m.threadBits[e.thread] {
		for w != 0 {
			pos := int32((wi << 6) + bits.TrailingZeros64(w))
			w &= w - 1
			c := &m.ents[m.entryAt(pos)]
			if c.tag < e.tag && c.inst.Op.IsCT() && c.state != stDone {
				return true
			}
		}
	}
	return false
}

// forwardFromStore finds the youngest older same-thread store to the
// load's address. The caller decides whether its value may forward (any
// aliasing store under the StoreForwarding extension; only a same-block
// store under the paper's restricted policy — the one case that would
// otherwise deadlock block-granularity commit). blocked=true means an
// older store's address or data is still unknown, so the load cannot
// issue yet either way. Candidates are collected from the live-SW
// bitset and the store buffer, then tag-sorted, so the walk order is
// age order regardless of arena layout; the per-thread pending-SW
// counter skips the whole function for store-free threads.
func (m *Machine) forwardFromStore(e *suEntry, addr uint32) (value uint32, src *suEntry, blocked bool) {
	if m.swPend[e.thread] == 0 {
		return 0, nil, false
	}
	cands := m.fwdCands[:0]
	tb := m.threadBits[e.thread]
	for wi, w := range m.swBits {
		g := w & tb[wi]
		for g != 0 {
			pos := int32((wi << 6) + bits.TrailingZeros64(g))
			g &= g - 1
			si := m.entryAt(pos)
			if m.ents[si].tag < e.tag {
				cands = append(cands, si)
			}
		}
	}
	// Committed stores have left the SU but may still be draining.
	for _, soi := range m.storeBuf {
		so := &m.sops[soi]
		s := &m.ents[so.entry]
		if so.committed && !so.drained && s.thread == e.thread &&
			s.tag < e.tag && s.inst.Op == isa.SW {
			cands = append(cands, so.entry)
		}
	}
	m.fwdCands = cands
	m.sortIdxByTagDesc(cands)
	for _, ci := range cands {
		s := &m.ents[ci]
		saddr := s.addr
		if !s.addrValid {
			if !s.src[0].ready {
				return 0, nil, true // address unknown: cannot disambiguate
			}
			// Same thread as the load, so translation is the same constant
			// offset applied to the caller's addr.
			saddr = m.physAddr(s.thread, isa.EffAddr(s.src[0].value, s.inst.Imm))
		}
		if saddr != addr {
			continue
		}
		if s.addrValid {
			return s.storeData, s, false // issued: data already latched
		}
		if s.src[1].ready {
			return s.src[1].value, s, false
		}
		return 0, nil, true // aliasing store's data not produced yet
	}
	return 0, nil, false
}

// olderPendingFlagStore reports whether an older same-thread FSTW has
// not yet drained to the synchronization controller (still in the SU or
// the store buffer). The per-thread pending-FSTW counter gates both
// scans.
func (m *Machine) olderPendingFlagStore(e *suEntry) bool {
	if m.fstwPend[e.thread] == 0 {
		return false
	}
	tb := m.threadBits[e.thread]
	for wi, w := range m.fstwBits {
		g := w & tb[wi]
		for g != 0 {
			pos := int32((wi << 6) + bits.TrailingZeros64(g))
			g &= g - 1
			if m.ents[m.entryAt(pos)].tag < e.tag {
				return true
			}
		}
	}
	for _, soi := range m.storeBuf {
		so := &m.sops[soi]
		s := &m.ents[so.entry]
		if !so.drained && s.thread == e.thread &&
			s.tag < e.tag && s.inst.Op == isa.FSTW {
			return true
		}
	}
	return false
}

// olderUnresolvedSync reports whether an older same-thread sync
// primitive (FLDW/FAI) is still in flight. The per-thread undone-sync
// counter keeps this free for programs (and phases) with no sync ops.
func (m *Machine) olderUnresolvedSync(e *suEntry) bool {
	if m.syncUndone[e.thread] == 0 {
		return false
	}
	for wi, w := range m.threadBits[e.thread] {
		for w != 0 {
			pos := int32((wi << 6) + bits.TrailingZeros64(w))
			w &= w - 1
			c := &m.ents[m.entryAt(pos)]
			if c.tag < e.tag && c.inst.Op.FUClass() == isa.ClassSync && c.state != stDone {
				return true
			}
		}
	}
	return false
}

// serviceLoads retries pending loads against the cache, oldest first.
// A hit schedules the result and frees the load unit. All of a cycle's
// retries go to the cache as one batched call (cache.ReadMany), which
// hoists the blocked-refill fast path out of the per-load work while
// preserving per-request semantics and order exactly.
func (m *Machine) serviceLoads() {
	if m.fault != nil || len(m.pendingLoads) == 0 {
		return
	}
	pool := &m.pools[isa.ClassLoad]
	live := m.pendingLoads[:0]
	reqs := m.loadReqs[:0]
	for _, ei := range m.pendingLoads {
		e := &m.ents[ei]
		if e.squashed {
			pool.release(e.fuUnit)
			m.heldLoads--
			m.sqPend--
			e.where &^= inPendingLoads
			m.release(e)
			continue
		}
		live = append(live, ei)
		reqs = append(reqs, cache.ReadReq{Addr: e.addr, Count: !e.counted})
	}
	m.loadReqs = reqs
	m.dcache.ReadMany(m.now, reqs)
	remaining := live[:0]
	for i, ei := range live {
		e := &m.ents[ei]
		e.counted = true
		if reqs[i].Res != cache.Hit {
			remaining = append(remaining, ei)
			continue
		}
		e.result = reqs[i].Val
		e.completeAt = m.now + pool.latency
		e.where = e.where&^inPendingLoads | inCompletions
		m.completions = append(m.completions, ei)
		pool.release(e.fuUnit)
		m.heldLoads--
	}
	m.pendingLoads = remaining
}

// drainStores retires at most one committed store per cycle from the
// store buffer to the cache (or the sync controller for FSTW).
func (m *Machine) drainStores() {
	if m.fault != nil || len(m.drainQueue) == 0 {
		return
	}
	so := &m.sops[m.drainQueue[0]]
	e := &m.ents[so.entry]
	if e.badAddr {
		m.failMem("drain", e, "%v committed an illegal store address", e.inst)
		return
	}
	if e.inst.Op == isa.FSTW {
		if err := m.sync.Write(e.addr, e.storeData); err != nil {
			// Unreachable: badAddr covers segment violations at issue.
			m.failf(FaultInternal, "drain", e.thread, e.pc,
				"sync controller rejected validated FSTW address %#x: %v", e.addr, err)
			return
		}
		m.fstwPend[e.thread]--
	} else {
		res := m.dcache.Write(e.addr, e.storeData, m.now, !so.counted)
		so.counted = true
		if res != cache.Hit { // miss or busy: head-of-line retry next cycle
			if m.cov != nil {
				m.cov.Hit(cover.EvStoreDrainBlocked)
			}
			return
		}
		m.swPend[e.thread]--
	}
	so.drained = true
	m.popDrainQueue()
	m.removeFromStoreBuf(so.idx)
	m.freeStoreOp(so)
	m.lastProgress = m.now
}

func (m *Machine) removeFromStoreBuf(target int32) {
	for i, soi := range m.storeBuf {
		if soi == target {
			m.storeBuf = append(m.storeBuf[:i], m.storeBuf[i+1:]...)
			return
		}
	}
}
