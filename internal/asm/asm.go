// Package asm implements a two-pass assembler for SDSP-32.
//
// Source syntax:
//
//	; comment (also #)
//	label:  add   r1, r2, r3
//	        lw    r4, 8(r5)
//	        beq   r1, r0, done
//	        li    r6, table        ; pseudo: expands to lui+ori
//	        .data
//	table:  .word 1, 2, 3
//	vec:    .float 1.5, 2.5
//	buf:    .space 64
//	        .flags
//	lock:   .space 4
//
// Segments: .text (default), .data, .flags. Labels are absolute byte
// addresses after linking against the loader's address map. The flag
// segment is zero-initialized and may contain only .space and .align.
//
// Pseudo-instructions: li (load 32-bit immediate or address), fli (load
// float32 constant), mv (register move), b (unconditional branch).
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/loader"
)

// fetchBlockBytes is the SDSP fetch block size .balign pads to.
const fetchBlockBytes = 16

type segment int

const (
	segText segment = iota
	segData
	segFlags
)

type stmt struct {
	line     int
	mnemonic string
	args     []string
	addr     uint32 // absolute address, assigned in pass 1
	size     uint32 // size in bytes
	seg      segment
	dirData  []string // operand list for data directives
}

type assembler struct {
	stmts   []stmt
	symbols map[string]uint32
	text    []uint32
	data    []uint32
	flagLen uint32
}

// Assemble translates SDSP-32 assembly source into a linked object.
func Assemble(src string) (*loader.Object, error) {
	a := &assembler{symbols: map[string]uint32{}}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := a.emit(); err != nil {
		return nil, err
	}
	obj := &loader.Object{
		Text:    a.text,
		Data:    a.data,
		FlagLen: a.flagLen,
		Symbols: a.symbols,
	}
	if entry, ok := a.symbols["main"]; ok {
		obj.Entry = entry
	}
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	return obj, nil
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

// parse splits the source into labeled statements (pass 0).
func (a *assembler) parse(src string) error {
	seg := segText
	pendingLabels := []string{}
	labelLines := map[string]int{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validLabel(label) {
				return errAt(lineNo+1, "invalid label %q", label)
			}
			if _, dup := labelLines[label]; dup {
				return errAt(lineNo+1, "duplicate label %q (first defined on line %d)", label, labelLines[label])
			}
			labelLines[label] = lineNo + 1
			pendingLabels = append(pendingLabels, label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnemonic := strings.ToLower(fields[0])
		var rest string
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
		switch mnemonic {
		case ".text":
			seg = segText
			continue
		case ".data":
			seg = segData
			continue
		case ".flags":
			seg = segFlags
			continue
		}
		s := stmt{line: lineNo + 1, mnemonic: mnemonic, seg: seg}
		if strings.HasPrefix(mnemonic, ".") {
			s.dirData = splitArgs(rest)
		} else {
			s.args = splitArgs(rest)
		}
		// Pending labels bind to this statement's eventual address.
		a.stmts = append(a.stmts, s)
		for _, l := range pendingLabels {
			a.symbols[l] = uint32(len(a.stmts) - 1) // temporarily: statement index
		}
		pendingLabels = pendingLabels[:0]
	}
	if len(pendingLabels) > 0 {
		// Trailing labels bind to the end of their segment; append an
		// empty marker statement.
		a.stmts = append(a.stmts, stmt{line: -1, mnemonic: ".space", seg: seg, dirData: []string{"0"}})
		for _, l := range pendingLabels {
			a.symbols[l] = uint32(len(a.stmts) - 1)
		}
	}
	return nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// layout assigns addresses (pass 1). Statement sizes must not depend on
// symbol values; li/fli with symbolic operands have a fixed 2-word
// expansion. .balign's size depends only on the running text offset.
func (a *assembler) layout() error {
	var textOff, dataOff, flagOff uint32
	for i := range a.stmts {
		s := &a.stmts[i]
		var size uint32
		var err error
		if s.mnemonic == ".balign" {
			if s.seg != segText {
				return errAt(s.line, ".balign is only supported in .text")
			}
			size = (fetchBlockBytes - textOff%fetchBlockBytes) % fetchBlockBytes
		} else {
			size, err = a.stmtSize(s)
		}
		if err != nil {
			return err
		}
		s.size = size
		switch s.seg {
		case segText:
			s.addr = loader.TextBase + textOff
			textOff += size
		case segData:
			s.addr = loader.DataBase + dataOff
			dataOff += size
		case segFlags:
			s.addr = loader.FlagBase + flagOff
			flagOff += size
		}
	}
	// Resolve symbols from statement indexes to addresses.
	for name, idx := range a.symbols {
		a.symbols[name] = a.stmts[idx].addr
	}
	a.flagLen = flagOff
	return nil
}

func (a *assembler) stmtSize(s *stmt) (uint32, error) {
	if strings.HasPrefix(s.mnemonic, ".") {
		return a.directiveSize(s)
	}
	if s.seg != segText {
		return 0, errAt(s.line, "instruction %q outside .text", s.mnemonic)
	}
	switch s.mnemonic {
	case "li", "fli":
		if len(s.args) != 2 {
			return 0, errAt(s.line, "%s needs 2 operands", s.mnemonic)
		}
		v, numeric, err := a.constOperand(s)
		if err != nil {
			return 0, err
		}
		if !numeric {
			return 2 * 4, nil // symbolic address: lui+ori
		}
		return uint32(len(liExpansion(0, v))) * 4, nil
	case "mv", "b":
		return 4, nil
	}
	if _, ok := mnemonicOps[s.mnemonic]; !ok {
		return 0, errAt(s.line, "unknown mnemonic %q", s.mnemonic)
	}
	return 4, nil
}

// constOperand evaluates a li/fli operand if it is a pure constant.
func (a *assembler) constOperand(s *stmt) (uint32, bool, error) {
	arg := s.args[1]
	if s.mnemonic == "fli" {
		f, err := strconv.ParseFloat(arg, 32)
		if err != nil {
			return 0, false, errAt(s.line, "fli operand %q is not a float", arg)
		}
		return math.Float32bits(float32(f)), true, nil
	}
	if v, err := parseInt(arg); err == nil {
		return uint32(v), true, nil
	}
	return 0, false, nil // symbolic
}

func (a *assembler) directiveSize(s *stmt) (uint32, error) {
	switch s.mnemonic {
	case ".word", ".float":
		if s.seg == segFlags {
			return 0, errAt(s.line, "%s not allowed in .flags (zero-initialized)", s.mnemonic)
		}
		if s.seg == segText {
			return 0, errAt(s.line, "%s not allowed in .text", s.mnemonic)
		}
		return uint32(len(s.dirData)) * 4, nil
	case ".space":
		if len(s.dirData) != 1 {
			return 0, errAt(s.line, ".space needs one operand")
		}
		n, err := parseInt(s.dirData[0])
		if err != nil || n < 0 {
			return 0, errAt(s.line, ".space operand %q invalid", s.dirData[0])
		}
		if n > loader.FlagBase { // larger than any segment could hold
			return 0, errAt(s.line, ".space %d exceeds the segment size", n)
		}
		return uint32(n+3) &^ 3, nil
	case ".align":
		return 0, errAt(s.line, "use .balign to pad to a fetch-block boundary")
	}
	return 0, errAt(s.line, "unknown directive %q", s.mnemonic)
}

// emit encodes statements (pass 2).
func (a *assembler) emit() error {
	for i := range a.stmts {
		s := &a.stmts[i]
		if s.mnemonic == ".balign" {
			// Pad to the next fetch-block boundary with NOPs so branch
			// targets land on block starts (the paper's improvement #2).
			nop, err := isa.Encode(isa.Inst{Op: isa.NOP})
			if err != nil {
				return errAt(s.line, "encoding nop padding: %v", err)
			}
			for n := uint32(0); n < s.size; n += 4 {
				a.text = append(a.text, nop)
			}
			continue
		}
		if strings.HasPrefix(s.mnemonic, ".") {
			if err := a.emitDirective(s); err != nil {
				return err
			}
			continue
		}
		insts, err := a.encodeStmt(s)
		if err != nil {
			return err
		}
		if uint32(len(insts))*4 != s.size {
			return errAt(s.line, "internal: expansion size changed between passes")
		}
		for _, in := range insts {
			w, err := isa.Encode(in)
			if err != nil {
				return errAt(s.line, "%v", err)
			}
			a.text = append(a.text, w)
		}
	}
	return nil
}

func (a *assembler) emitDirective(s *stmt) error {
	switch s.mnemonic {
	case ".word":
		for _, arg := range s.dirData {
			v, err := a.eval(arg, s.line)
			if err != nil {
				return err
			}
			a.data = append(a.data, uint32(v))
		}
	case ".float":
		for _, arg := range s.dirData {
			f, err := strconv.ParseFloat(arg, 32)
			if err != nil {
				return errAt(s.line, ".float operand %q: %v", arg, err)
			}
			a.data = append(a.data, math.Float32bits(float32(f)))
		}
	case ".space":
		if s.seg == segData {
			for n := uint32(0); n < s.size; n += 4 {
				a.data = append(a.data, 0)
			}
		}
		// .space in .flags only advances the offset (already done in layout).
	}
	return nil
}

// eval resolves an integer expression: number, label, label+n, label-n.
func (a *assembler) eval(arg string, line int) (int64, error) {
	if arg == "" {
		return 0, errAt(line, "empty operand")
	}
	if v, err := parseInt(arg); err == nil {
		return v, nil
	}
	base := arg
	var off int64
	if i := strings.LastIndexAny(arg[1:], "+-"); i >= 0 {
		i++ // index into arg
		v, err := parseInt(arg[i:])
		if err == nil {
			base = strings.TrimSpace(arg[:i])
			off = v
		}
	}
	addr, ok := a.symbols[base]
	if !ok {
		return 0, errAt(line, "undefined symbol %q", base)
	}
	return int64(addr) + off, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}
