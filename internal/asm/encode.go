package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// mnemonicOps maps assembler mnemonics to opcodes.
var mnemonicOps = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(0); op < isa.NumOps; op++ {
		m[op.Name()] = op
	}
	return m
}()

// operand shape groups drive parsing.
var (
	r2Ops   = map[isa.Op]bool{isa.FNEG: true, isa.FABS: true, isa.CVTIF: true, isa.CVTFI: true}
	r1Ops   = map[isa.Op]bool{isa.TID: true, isa.NTH: true}
	loadOps = map[isa.Op]bool{isa.LW: true, isa.FLDW: true, isa.FAI: true}
	storOps = map[isa.Op]bool{isa.SW: true, isa.FSTW: true}
)

// encodeStmt expands one statement into instructions (pass 2).
func (a *assembler) encodeStmt(s *stmt) ([]isa.Inst, error) {
	switch s.mnemonic {
	case "li", "fli":
		rd, err := parseReg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		v, numeric, err := a.constOperand(s)
		if err != nil {
			return nil, err
		}
		if numeric {
			return liExpansion(rd, v), nil
		}
		val, err := a.eval(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		if val < 0 || val > (1<<31)-1 {
			return nil, errAt(s.line, "symbolic li value %#x outside 31-bit range", val)
		}
		return liAddr(rd, uint32(val)), nil
	case "mv":
		if len(s.args) != 2 {
			return nil, errAt(s.line, "mv needs 2 operands")
		}
		rd, err1 := parseReg(s.args[0], s.line)
		rs, err2 := parseReg(s.args[1], s.line)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%v%v", orNil(err1), orNil(err2))
		}
		return []isa.Inst{{Op: isa.ADDI, Rd: rd, Rs1: rs}}, nil
	case "b":
		if len(s.args) != 1 {
			return nil, errAt(s.line, "b needs a target")
		}
		off, err := a.ctOffset(s.args[0], s, isa.Imm19Fits)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.JAL, Rd: 0, Imm: off}}, nil
	}

	op, ok := mnemonicOps[s.mnemonic]
	if !ok {
		return nil, errAt(s.line, "unknown mnemonic %q", s.mnemonic)
	}
	in := isa.Inst{Op: op}
	var err error
	switch {
	case op == isa.NOP || op == isa.HALT:
		if len(s.args) != 0 {
			return nil, errAt(s.line, "%s takes no operands", op)
		}
	case r1Ops[op]:
		in.Rd, err = a.oneReg(s)
	case r2Ops[op]:
		in.Rd, in.Rs1, err = a.twoRegs(s)
	case loadOps[op]:
		in.Rd, in.Rs1, in.Imm, err = a.memOperands(s)
	case storOps[op]:
		in.Rs2, in.Rs1, in.Imm, err = a.memOperands(s)
	case op.IsBranch():
		err = a.branchOperands(s, &in)
	case op == isa.JAL:
		err = a.jalOperands(s, &in)
	case op == isa.JALR:
		in.Rd, in.Rs1, in.Imm, err = a.regRegImm(s)
	case op == isa.LUI:
		in.Rd, in.Imm, err = a.regImm(s, isa.LUIImmFits)
	case isa.HasImmOperand(op):
		in.Rd, in.Rs1, in.Imm, err = a.regRegImm(s)
	default: // three-register ops
		in.Rd, in.Rs1, in.Rs2, err = a.threeRegs(s)
	}
	if err != nil {
		return nil, err
	}
	return []isa.Inst{in}, nil
}

func orNil(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// imm12Raw reinterprets the low 12 bits of v as a signed immediate so
// the encoder accepts it; logical ops zero-extend at evaluation time,
// recovering the original bits.
func imm12Raw(v uint32) int32 { return int32(v<<20) >> 20 }

// liExpansion builds the shortest sequence loading constant v into rd.
func liExpansion(rd uint8, v uint32) []isa.Inst {
	if isa.Imm12Fits(int32(v)) {
		return []isa.Inst{{Op: isa.ADDI, Rd: rd, Imm: int32(v)}}
	}
	if v>>31 == 0 {
		return liAddr(rd, v)
	}
	// Bit 31 set: build v>>1, shift left, then or in the low bit.
	h := v >> 1
	return []isa.Inst{
		{Op: isa.LUI, Rd: rd, Imm: int32(h >> 12)},
		{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: imm12Raw(h)},
		{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 1},
		{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(v & 1)},
	}
}

// liAddr is the fixed two-instruction form used for symbolic operands,
// valid for any value below 2^31.
func liAddr(rd uint8, v uint32) []isa.Inst {
	return []isa.Inst{
		{Op: isa.LUI, Rd: rd, Imm: int32(v >> 12)},
		{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: imm12Raw(v)},
	}
}

func parseReg(s string, line int) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, errAt(line, "expected register, got %q", s)
	}
	n := 0
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return 0, errAt(line, "expected register, got %q", s)
		}
		n = n*10 + int(c-'0')
		if n > 127 {
			return 0, errAt(line, "register %q out of range", s)
		}
	}
	return uint8(n), nil
}

func (a *assembler) oneReg(s *stmt) (uint8, error) {
	if len(s.args) != 1 {
		return 0, errAt(s.line, "%s needs 1 operand", s.mnemonic)
	}
	return parseReg(s.args[0], s.line)
}

func (a *assembler) twoRegs(s *stmt) (rd, rs1 uint8, err error) {
	if len(s.args) != 2 {
		return 0, 0, errAt(s.line, "%s needs 2 operands", s.mnemonic)
	}
	if rd, err = parseReg(s.args[0], s.line); err != nil {
		return
	}
	rs1, err = parseReg(s.args[1], s.line)
	return
}

func (a *assembler) threeRegs(s *stmt) (rd, rs1, rs2 uint8, err error) {
	if len(s.args) != 3 {
		return 0, 0, 0, errAt(s.line, "%s needs 3 operands", s.mnemonic)
	}
	if rd, err = parseReg(s.args[0], s.line); err != nil {
		return
	}
	if rs1, err = parseReg(s.args[1], s.line); err != nil {
		return
	}
	rs2, err = parseReg(s.args[2], s.line)
	return
}

func (a *assembler) regRegImm(s *stmt) (rd, rs1 uint8, imm int32, err error) {
	if len(s.args) != 3 {
		return 0, 0, 0, errAt(s.line, "%s needs 3 operands", s.mnemonic)
	}
	if rd, err = parseReg(s.args[0], s.line); err != nil {
		return
	}
	if rs1, err = parseReg(s.args[1], s.line); err != nil {
		return
	}
	v, err := a.eval(s.args[2], s.line)
	if err != nil {
		return
	}
	op := mnemonicOps[s.mnemonic]
	logical := op == isa.ANDI || op == isa.ORI || op == isa.XORI
	if logical && v >= 0 && v <= 0xFFF {
		imm = imm12Raw(uint32(v)) // zero-extended logical immediate
		return
	}
	if !isa.Imm12Fits(int32(v)) || int64(int32(v)) != v {
		err = errAt(s.line, "immediate %d out of 12-bit range", v)
		return
	}
	imm = int32(v)
	return
}

func (a *assembler) regImm(s *stmt, fits func(int32) bool) (rd uint8, imm int32, err error) {
	if len(s.args) != 2 {
		return 0, 0, errAt(s.line, "%s needs 2 operands", s.mnemonic)
	}
	if rd, err = parseReg(s.args[0], s.line); err != nil {
		return
	}
	v, err := a.eval(s.args[1], s.line)
	if err != nil {
		return
	}
	if !fits(int32(v)) || int64(int32(v)) != v {
		err = errAt(s.line, "immediate %d out of range", v)
		return
	}
	imm = int32(v)
	return
}

// memOperands parses "rX, imm(rY)" into (reg, base, offset).
func (a *assembler) memOperands(s *stmt) (reg, base uint8, imm int32, err error) {
	if len(s.args) != 2 {
		return 0, 0, 0, errAt(s.line, "%s needs 2 operands", s.mnemonic)
	}
	if reg, err = parseReg(s.args[0], s.line); err != nil {
		return
	}
	arg := s.args[1]
	open := strings.IndexByte(arg, '(')
	if open < 0 || !strings.HasSuffix(arg, ")") {
		err = errAt(s.line, "expected imm(reg), got %q", arg)
		return
	}
	if base, err = parseReg(arg[open+1:len(arg)-1], s.line); err != nil {
		return
	}
	if open > 0 {
		var v int64
		if v, err = a.eval(strings.TrimSpace(arg[:open]), s.line); err != nil {
			return
		}
		if !isa.Imm12Fits(int32(v)) || int64(int32(v)) != v {
			err = errAt(s.line, "offset %d out of 12-bit range", v)
			return
		}
		imm = int32(v)
	}
	return
}

// ctOffset resolves a branch/jump target into an instruction-count
// offset from the statement's own address.
func (a *assembler) ctOffset(arg string, s *stmt, fits func(int32) bool) (int32, error) {
	v, err := a.eval(arg, s.line)
	if err != nil {
		return 0, err
	}
	delta := v - int64(s.addr)
	if delta%4 != 0 {
		return 0, errAt(s.line, "target %q not instruction-aligned", arg)
	}
	off := delta / 4
	if int64(int32(off)) != off || !fits(int32(off)) {
		return 0, errAt(s.line, "target %q out of range (offset %d instructions)", arg, off)
	}
	return int32(off), nil
}

func (a *assembler) branchOperands(s *stmt, in *isa.Inst) error {
	if len(s.args) != 3 {
		return errAt(s.line, "%s needs 3 operands", s.mnemonic)
	}
	var err error
	if in.Rs1, err = parseReg(s.args[0], s.line); err != nil {
		return err
	}
	if in.Rs2, err = parseReg(s.args[1], s.line); err != nil {
		return err
	}
	in.Imm, err = a.ctOffset(s.args[2], s, isa.Imm12Fits)
	return err
}

func (a *assembler) jalOperands(s *stmt, in *isa.Inst) error {
	if len(s.args) != 2 {
		return errAt(s.line, "jal needs 2 operands (rd, target)")
	}
	var err error
	if in.Rd, err = parseReg(s.args[0], s.line); err != nil {
		return err
	}
	in.Imm, err = a.ctOffset(s.args[1], s, isa.Imm19Fits)
	return err
}

// Disassemble renders encoded text as assembly, one line per word.
func Disassemble(text []uint32) []string {
	out := make([]string, len(text))
	for i, w := range text {
		in, err := isa.Decode(w)
		if err != nil {
			out[i] = fmt.Sprintf(".word %#08x ; %v", w, err)
			continue
		}
		out[i] = in.String()
	}
	return out
}
