package asm

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/loader"
)

func mustAssemble(t *testing.T, src string) *loader.Object {
	t.Helper()
	obj, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return obj
}

func sym(t *testing.T, obj *loader.Object, name string) uint32 {
	t.Helper()
	addr, err := obj.Symbol(name)
	if err != nil {
		t.Fatalf("Symbol(%q): %v", name, err)
	}
	return addr
}

func decodeAll(t *testing.T, text []uint32) []isa.Inst {
	t.Helper()
	out := make([]isa.Inst, len(text))
	for i, w := range text {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("decode word %d: %v", i, err)
		}
		out[i] = in
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	obj := mustAssemble(t, `
		; a tiny program
		main:   add  r1, r2, r3
		        addi r4, r1, -5
		        nop
		        halt
	`)
	insts := decodeAll(t, obj.Text)
	want := []isa.Inst{
		{Op: isa.ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.ADDI, Rd: 4, Rs1: 1, Imm: -5},
		{Op: isa.NOP},
		{Op: isa.HALT},
	}
	if len(insts) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(insts), len(want))
	}
	for i := range want {
		if insts[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, insts[i], want[i])
		}
	}
	if obj.Entry != 0 {
		t.Errorf("entry = %#x, want 0", obj.Entry)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	obj := mustAssemble(t, `
		main:  addi r1, r0, 3
		loop:  addi r1, r1, -1
		       bne  r1, r0, loop
		       b    done
		       nop
		done:  halt
	`)
	insts := decodeAll(t, obj.Text)
	if insts[2].Op != isa.BNE || insts[2].Imm != -1 {
		t.Errorf("bne = %v, want offset -1", insts[2])
	}
	if insts[3].Op != isa.JAL || insts[3].Rd != 0 || insts[3].Imm != 2 {
		t.Errorf("b = %v, want jal r0 offset 2", insts[3])
	}
}

func TestMemoryOperands(t *testing.T) {
	obj := mustAssemble(t, `
		main: lw  r1, 8(r2)
		      sw  r1, -4(r3)
		      lw  r4, (r5)
		      halt
	`)
	insts := decodeAll(t, obj.Text)
	if insts[0] != (isa.Inst{Op: isa.LW, Rd: 1, Rs1: 2, Imm: 8}) {
		t.Errorf("lw = %v", insts[0])
	}
	if insts[1] != (isa.Inst{Op: isa.SW, Rs2: 1, Rs1: 3, Imm: -4}) {
		t.Errorf("sw = %v", insts[1])
	}
	if insts[2] != (isa.Inst{Op: isa.LW, Rd: 4, Rs1: 5}) {
		t.Errorf("lw no-offset = %v", insts[2])
	}
}

func TestDataSegmentAndSymbols(t *testing.T) {
	obj := mustAssemble(t, `
		main:   li r1, table
		        lw r2, 0(r1)
		        halt
		.data
		table:  .word 10, 20, 0x1F
		vec:    .float 1.5
		buf:    .space 8
		end:    .space 0
	`)
	table := sym(t, obj, "table")
	if table != loader.DataBase {
		t.Errorf("table = %#x, want %#x", table, uint32(loader.DataBase))
	}
	if got := sym(t, obj, "vec"); got != table+12 {
		t.Errorf("vec = %#x, want %#x", got, table+12)
	}
	if got := sym(t, obj, "end"); got != table+24 {
		t.Errorf("end = %#x, want %#x", got, table+24)
	}
	if len(obj.Data) != 6 {
		t.Fatalf("data length = %d, want 6", len(obj.Data))
	}
	if obj.Data[0] != 10 || obj.Data[1] != 20 || obj.Data[2] != 0x1F {
		t.Errorf("data words = %v", obj.Data[:3])
	}
	if obj.Data[3] != math.Float32bits(1.5) {
		t.Errorf("float word = %#x", obj.Data[3])
	}
	// li of a data address must expand to lui+ori producing the address.
	insts := decodeAll(t, obj.Text)
	if insts[0].Op != isa.LUI || insts[1].Op != isa.ORI {
		t.Fatalf("li expansion = %v, %v", insts[0], insts[1])
	}
	v := isa.EvalOp(isa.LUI, 0, uint32(insts[0].Imm))
	v = isa.EvalOp(isa.ORI, v, isa.EvalImmOperand(isa.ORI, insts[1].Imm))
	if v != table {
		t.Errorf("li materializes %#x, want %#x", v, table)
	}
}

func TestFlagsSegment(t *testing.T) {
	obj := mustAssemble(t, `
		main: halt
		.flags
		lock:    .space 4
		barrier: .space 8
	`)
	if got := sym(t, obj, "lock"); got != loader.FlagBase {
		t.Errorf("lock = %#x, want %#x", got, uint32(loader.FlagBase))
	}
	if got := sym(t, obj, "barrier"); got != loader.FlagBase+4 {
		t.Errorf("barrier = %#x", got)
	}
	if obj.FlagLen != 12 {
		t.Errorf("FlagLen = %d, want 12", obj.FlagLen)
	}
}

// materialize runs a register-only instruction sequence, tracking just
// the register file; enough to check li expansions.
func materialize(insts []isa.Inst) [128]uint32 {
	var regs [128]uint32
	for _, in := range insts {
		var b uint32
		if isa.HasImmOperand(in.Op) {
			b = isa.EvalImmOperand(in.Op, in.Imm)
		} else {
			b = regs[in.Rs2]
		}
		regs[in.Rd] = isa.EvalOp(in.Op, regs[in.Rs1], b)
	}
	return regs
}

func TestLiExpansionValues(t *testing.T) {
	neg := func(v int32) uint32 { return uint32(v) }
	cases := []uint32{0, 1, 5, 2047, 2048, 0xFFF, 0x1000, 0x12345, 0x7FFFFFFF,
		0x80000000, 0xFFFFFFFF, 0xDEADBEEF, neg(-2048), neg(-2049)}
	for _, v := range cases {
		insts := liExpansion(3, v)
		regs := materialize(insts)
		if regs[3] != v {
			t.Errorf("li r3, %#x materializes %#x (%d insts)", v, regs[3], len(insts))
		}
	}
}

func TestLiExpansionProperty(t *testing.T) {
	f := func(v uint32) bool {
		regs := materialize(liExpansion(7, v))
		return regs[7] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFliExpansion(t *testing.T) {
	for _, f := range []float32{0, 1.5, -2.25, 3.14159, -1e-7, 6.02e23} {
		src := "main: fli r2, " + strconv.FormatFloat(float64(f), 'g', -1, 32) + "\n halt"
		obj := mustAssemble(t, src)
		insts := decodeAll(t, obj.Text)
		regs := materialize(insts[:len(insts)-1]) // drop halt
		if regs[2] != math.Float32bits(f) {
			t.Errorf("fli %v materializes %#x, want %#x", f, regs[2], math.Float32bits(f))
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "main: frobnicate r1", "unknown mnemonic"},
		{"undefined symbol", "main: beq r0, r0, nowhere", "undefined symbol"},
		{"duplicate label", "x: nop\nx: nop", "duplicate label"},
		{"imm range", "main: addi r1, r0, 5000", "out of 12-bit range"},
		{"bad register", "main: add r1, r2, r999", "out of range"},
		{"data in text", "main: .word 5", "not allowed in .text"},
		{"word in flags", ".flags\nf: .word 1", "not allowed in .flags"},
		{"instr in data", ".data\nadd r1, r2, r3", "outside .text"},
		{"bad mem operand", "main: lw r1, r2", "expected imm(reg)"},
		{"wrong arity", "main: add r1, r2", "needs 3 operands"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestTrailingLabel(t *testing.T) {
	obj := mustAssemble(t, `
		main: nop
		      halt
		.data
		a:    .word 1
		end_of_data:
	`)
	if got := sym(t, obj, "end_of_data"); got != loader.DataBase+4 {
		t.Errorf("trailing label = %#x, want %#x", got, loader.DataBase+4)
	}
}

func TestLabelPlusOffset(t *testing.T) {
	obj := mustAssemble(t, `
		main: li r1, table+8
		      halt
		.data
		table: .word 1, 2, 3
	`)
	insts := decodeAll(t, obj.Text)
	regs := materialize(insts[:2])
	if want := sym(t, obj, "table") + 8; regs[1] != want {
		t.Errorf("li table+8 = %#x, want %#x", regs[1], want)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		main:  addi r1, r0, 10
		loop:  addi r1, r1, -1
		       mul  r2, r1, r1
		       bne  r1, r0, loop
		       halt
	`
	obj := mustAssemble(t, src)
	lines := Disassemble(obj.Text)
	if len(lines) != len(obj.Text) {
		t.Fatalf("disassembled %d lines for %d words", len(lines), len(obj.Text))
	}
	// Reassembling the disassembly (branch offsets become absolute
	// targets, so rebuild with explicit offsets checked textually).
	if !strings.Contains(lines[0], "addi r1, r0, 10") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[3], "bne") {
		t.Errorf("line 3 = %q", lines[3])
	}
}

func TestEntryDefaultsToZeroWithoutMain(t *testing.T) {
	obj := mustAssemble(t, "start: nop\n halt")
	if obj.Entry != 0 {
		t.Errorf("entry = %#x, want 0", obj.Entry)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	obj := mustAssemble(t, `
		# full line comment

		main: nop ; trailing comment
		      halt # another
	`)
	if len(obj.Text) != 2 {
		t.Errorf("text length = %d, want 2", len(obj.Text))
	}
}

func TestBalign(t *testing.T) {
	obj := mustAssemble(t, `
		main:  nop
		       nop
		       .balign
		loop:  addi r1, r1, 1
		       bne  r1, r0, loop
		       halt
	`)
	if got := sym(t, obj, "loop"); got != 16 {
		t.Errorf("loop = %#x, want 16 (block-aligned)", got)
	}
	insts := decodeAll(t, obj.Text)
	// Padding NOPs fill slots 2 and 3.
	if insts[2].Op != isa.NOP || insts[3].Op != isa.NOP {
		t.Errorf("padding = %v, %v; want nops", insts[2], insts[3])
	}
	// The branch at aligned+1 must target the aligned label.
	if insts[5].Op != isa.BNE || insts[5].Imm != -1 {
		t.Errorf("branch = %v", insts[5])
	}
}

func TestBalignAlreadyAligned(t *testing.T) {
	obj := mustAssemble(t, `
		main: nop
		      nop
		      nop
		      nop
		      .balign
		l:    halt
	`)
	if got := sym(t, obj, "l"); got != 16 {
		t.Errorf("already-aligned .balign moved the label to %#x", got)
	}
	if len(obj.Text) != 5 {
		t.Errorf("text length %d, want 5 (no padding inserted)", len(obj.Text))
	}
}

func TestBalignOutsideTextRejected(t *testing.T) {
	_, err := Assemble("main: halt\n.data\n.balign\nx: .word 1")
	if err == nil || !strings.Contains(err.Error(), ".balign") {
		t.Errorf("err = %v", err)
	}
}
