package asm

import (
	"testing"

	"repro/internal/isa"
)

// FuzzAssemble: arbitrary source must either assemble into a valid
// object or return an error — never panic, never emit undecodable text.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"main: halt",
		"main: add r1, r2, r3\n halt",
		"main: li r1, 123456\nloop: addi r1, r1, -1\n bne r1, r0, loop\n halt",
		".data\nx: .word 1, 2\n.flags\nf: .space 4",
		"main: lw r1, 4(r2)\n sw r1, -4(r3)\n .balign\n halt",
		"main: beq r0, r0, main",
		"; comment only",
		"a: b: c: nop",
		"main: li r1, 0x7FFFFFFF\n fli r2, -1.5e-3\n halt",
		".data\nx: .space 999999999",
		"main: jal r1, main\n jalr r0, r1, 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		obj, err := Assemble(src)
		if err != nil {
			return
		}
		// A successful assembly must produce decodable text and a valid
		// object.
		if err := obj.Validate(); err != nil {
			t.Fatalf("assembled object invalid: %v", err)
		}
		for i, w := range obj.Text {
			if _, err := isa.Decode(w); err != nil {
				t.Fatalf("word %d undecodable: %v", i, err)
			}
		}
	})
}

// FuzzDisassemble: any 32-bit word either decodes (and re-encodes to
// the same bits) or errors cleanly.
func FuzzDisassemble(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	w, err := isa.Encode(isa.Inst{Op: isa.ADD, Rd: 1, Rs1: 2, Rs2: 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(w)
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := isa.Decode(w)
		if err != nil {
			return
		}
		// Unused low bits of FmtR/FmtN make decode non-injective, so mask
		// a re-encode against the canonical fields only.
		re, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("decoded %#08x to %v, which does not re-encode: %v", w, in, err)
		}
		back, err := isa.Decode(re)
		if err != nil || back != in {
			t.Fatalf("re-encode of %v not stable: %v, %v", in, back, err)
		}
	})
}
