// Package sdsp is the public API of the multithreaded SDSP superscalar
// simulator, a reproduction of Gulati & Bagherzadeh, "Performance Study
// of a Multithreaded Superscalar Microprocessor" (HPCA 1996).
//
// The typical flow is three lines: pick a workload, pick a
// configuration, run.
//
//	obj, _ := sdsp.Workload("Matrix", sdsp.WorkloadParams{Threads: 4})
//	res, _ := sdsp.Run(obj, sdsp.DefaultConfig(4))
//	fmt.Println(res.Cycles, res.IPC())
//
// Custom programs are assembled from SDSP-32 assembly source with
// Assemble, and machines can be stepped cycle-by-cycle through NewMachine
// for fine-grained inspection.
package sdsp

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/funcsim"
	"repro/internal/kernels"
	"repro/internal/loader"
	"repro/internal/minic"
)

// Config is the machine configuration (paper Table 2). It aliases the
// core configuration type; construct with DefaultConfig and adjust.
type Config = core.Config

// Stats is the result of a run.
type Stats = core.Stats

// Machine is a configured SDSP core with a loaded program.
type Machine = core.Machine

// Object is a linked SDSP-32 program.
type Object = loader.Object

// MachineError is the structured diagnostic a failed run returns: the
// fault kind (runaway, deadlock, invariant violation, memory fault),
// the faulting cycle, pipeline phase, thread, PC, and a state dump.
// Retrieve it with errors.As.
type MachineError = core.MachineError

// FaultInjector perturbs timing-only machine state for robustness
// testing; set Config.Injector to one (see ParseFaultSpec).
type FaultInjector = core.FaultInjector

// NoWatchdog disables the forward-progress watchdog when assigned to
// Config.Watchdog.
const NoWatchdog = core.NoWatchdog

// ParseFaultSpec builds a deterministic fault injector from a spec like
// "seed=42,miss=0.01,wb=0.01,flip=0.02,squash=0.005" or a preset name
// ("light", "medium", "heavy", "cache-storm", "wb-storm", "bpred-storm",
// "squash-storm", optionally with ",seed=N"). An empty spec or "none"
// returns (nil, nil). Under any schedule the machine must still produce
// memory identical to the functional reference — faults are timing-only.
func ParseFaultSpec(spec string) (FaultInjector, error) {
	s, err := fault.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil // a typed-nil FaultInjector would look non-nil to core
	}
	return s, nil
}

// FaultPresets lists the named fault-schedule presets.
func FaultPresets() []string { return fault.Presets() }

// Fetch policies (paper §5.1, plus the §6.1 "judicious" ICount
// extension and its two throttled variants — see docs/FRONTEND.md).
const (
	TrueRR         = core.TrueRR
	MaskedRR       = core.MaskedRR
	CondSwitch     = core.CondSwitch
	ICount         = core.ICount
	ICountFeedback = core.ICountFeedback
	ConfThrottle   = core.ConfThrottle
)

// Branch predictor kinds (Config.Predictor). The zero value is the
// paper's 2-bit counter, so existing configurations are unchanged.
const (
	PredTwoBit       = core.PredTwoBit
	PredGshare       = core.PredGshare
	PredGshareThread = core.PredGshareThread
	PredTAGE         = core.PredTAGE
)

// ParseFetchPolicy maps a CLI spelling (truerr, masked, cswitch,
// icount, icount-fb, confthrottle) to a fetch policy.
func ParseFetchPolicy(s string) (core.FetchPolicy, error) { return core.ParseFetchPolicy(s) }

// ParsePredictor maps a CLI spelling (2bit, gshare, gshare-pt, tage)
// to a predictor kind.
func ParsePredictor(s string) (core.PredictorKind, error) { return core.ParsePredictor(s) }

// Commit policies (paper §5.6).
const (
	FlexibleCommit = core.FlexibleCommit
	LowestOnly     = core.LowestOnly
)

// DefaultConfig returns the paper's default hardware configuration for
// the given number of resident threads.
func DefaultConfig(threads int) Config {
	cfg := core.DefaultConfig()
	cfg.Threads = threads
	return cfg
}

// EnhancedFUs returns the paper's "++" functional unit configuration.
func EnhancedFUs() core.FUConfig { return core.EnhancedFUs() }

// Assemble translates SDSP-32 assembly into a runnable object.
func Assemble(src string) (*Object, error) { return asm.Assemble(src) }

// CompileMiniC compiles MiniC source (docs/MINIC.md) for the given
// register budget — the paper's 128/N partition knob. A regs of 0 uses
// the 6-thread-safe default of 21.
func CompileMiniC(src string, regs int) (*Object, error) {
	return minic.CompileToObject(src, minic.Options{Regs: regs})
}

// Disassemble renders an object's text segment.
func Disassemble(obj *Object) []string { return asm.Disassemble(obj.Text) }

// WorkloadParams selects a benchmark build.
type WorkloadParams struct {
	Threads int
	// PaperScale selects the experiment-harness problem sizes; the
	// default is the small test scale.
	PaperScale bool
}

// Workloads lists the names of the paper's eleven benchmarks.
func Workloads() []string {
	var names []string
	for _, b := range kernels.All() {
		names = append(names, b.Name)
	}
	return names
}

// Workload builds one of the paper's benchmarks.
func Workload(name string, p WorkloadParams) (*Object, error) {
	b, err := kernels.Get(name)
	if err != nil {
		return nil, err
	}
	return b.Build(kernelParams(p))
}

// CheckWorkload validates a finished machine's memory against the
// benchmark's golden model.
func CheckWorkload(name string, m *Machine, obj *Object, p WorkloadParams) error {
	b, err := kernels.Get(name)
	if err != nil {
		return err
	}
	return b.Check(m.Memory(), obj, kernelParams(p))
}

func kernelParams(p WorkloadParams) kernels.Params {
	scale := kernels.Small
	if p.PaperScale {
		scale = kernels.Paper
	}
	return kernels.Params{Threads: p.Threads, Scale: scale}
}

// Mix describes a heterogeneous multiprogrammed workload: several
// programs resident at once, each in its own 2 MiB memory window with an
// independent thread group and register budget. Run one by setting
// Config.Mix and passing a nil object to NewMachine/Run, or use the
// RunMix/VerifyMix helpers.
type Mix = loader.Mix

// MixSlot is one program of a Mix: the object, how many threads run it,
// and its per-thread register budget (0 = an equal 128/N share).
type MixSlot = loader.Slot

// NewMixMachine builds a machine running mix under cfg (whose Mix and
// Threads fields are set from the mix), for cycle-stepping.
func NewMixMachine(mix *Mix, cfg Config) (*Machine, error) {
	cfg.Mix = mix
	cfg.Threads = mix.NumThreads()
	return core.New(nil, cfg)
}

// RunMix executes a heterogeneous mix to completion under cfg.
func RunMix(mix *Mix, cfg Config) (*Stats, error) {
	m, err := NewMixMachine(mix, cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// RunMixFunctional interprets a mix on the in-order reference simulator.
func RunMixFunctional(mix *Mix) (*funcsim.Sim, error) {
	return funcsim.RunMix(mix, 500_000_000)
}

// NewMachine builds a machine without running it, for cycle-stepping.
func NewMachine(obj *Object, cfg Config) (*Machine, error) { return core.New(obj, cfg) }

// Run executes obj to completion under cfg and returns statistics.
func Run(obj *Object, cfg Config) (*Stats, error) {
	m, err := core.New(obj, cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// RunFunctional interprets obj on the in-order reference simulator,
// returning it for state inspection. Useful to sanity-check custom
// programs before timing them.
func RunFunctional(obj *Object, threads int) (*funcsim.Sim, error) {
	return funcsim.RunProgram(obj, threads, 500_000_000)
}

// Speedup computes the paper's speedup metric between two cycle counts.
func Speedup(multiCycles, singleCycles uint64) float64 {
	return core.Speedup(multiCycles, singleCycles)
}

// Verify runs obj on both simulators and reports any divergence in
// final memory — the repository's core correctness invariant.
func Verify(obj *Object, cfg Config) error {
	ref, err := funcsim.RunProgram(obj, cfg.Threads, 500_000_000)
	if err != nil {
		return fmt.Errorf("functional run: %w", err)
	}
	m, err := core.New(obj, cfg)
	if err != nil {
		return err
	}
	if _, err := m.Run(); err != nil {
		return fmt.Errorf("pipeline run: %w", err)
	}
	return compareMemory(ref, m)
}

// VerifyMix is Verify for heterogeneous mixes: the full stacked memory —
// every slot's window — must match word for word, so any cross-slot leak
// shows up even when each program's own results look right.
func VerifyMix(mix *Mix, cfg Config) error {
	ref, err := funcsim.RunMix(mix, 500_000_000)
	if err != nil {
		return fmt.Errorf("functional run: %w", err)
	}
	m, err := NewMixMachine(mix, cfg)
	if err != nil {
		return err
	}
	if _, err := m.Run(); err != nil {
		return fmt.Errorf("pipeline run: %w", err)
	}
	return compareMemory(ref, m)
}

func compareMemory(ref *funcsim.Sim, m *Machine) error {
	refMem := ref.Memory().Snapshot()
	gotMem := m.Memory().Snapshot()
	if len(refMem) != len(gotMem) {
		return fmt.Errorf("memory sizes diverge: pipeline %d words, functional %d words",
			len(gotMem), len(refMem))
	}
	for i := range refMem {
		if refMem[i] != gotMem[i] {
			return fmt.Errorf("memory diverges at %#x: pipeline %#x, functional %#x",
				i*4, gotMem[i], refMem[i])
		}
	}
	return nil
}
