package sdsp_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cover"
	"repro/sdsp"
)

// hierWorkload deterministically exercises every backside hierarchy
// structure on a 1 KB direct-mapped L1 (32 sets):
//
//   - the 4 KB stride-32 walk misses every line from the second pass
//     on, training the stride prefetcher (hits) and hitting L2 tags;
//   - the ping-pong pair (data+0 / data+1024 share set 0) evicts each
//     other every access, so the victim buffer recovers each line;
//   - restarting the walk breaks the stride and re-trains it, so the
//     prefetches left in flight at the walk's end are overwritten
//     unconsumed — prefetch evictions.
const hierWorkload = `
	main:  li   r3, data
	       li   r9, 8          ; outer passes
	outer: li   r4, 128        ; 128 lines x 32 bytes = 4 KB walk
	       add  r5, r3, r0
	walk:  lw   r6, 0(r5)
	       addi r5, r5, 32
	       addi r4, r4, -1
	       bne  r4, r0, walk
	       li   r7, 6          ; victim ping-pong, same L1 set
	ping:  lw   r6, 0(r3)
	       lw   r6, 1024(r3)
	       addi r7, r7, -1
	       bne  r7, r0, ping
	       addi r9, r9, -1
	       bne  r9, r0, outer
	       halt
	.data
	data:  .word 0
`

// hierConfig is the shrunken-L1 full-hierarchy machine the workload
// above is written against.
func hierConfig(threads int) sdsp.Config {
	cfg := sdsp.DefaultConfig(threads)
	cfg.Cache.SizeBytes = 1024
	cfg.Cache.Ways = 1
	cfg.Cache.L2 = cache.DefaultL2()
	cfg.Cache.VictimEntries = 8
	cfg.Cache.Prefetch = true
	return cfg
}

// TestHierarchyCoverageFloor is the dedicated must-hit floor for the
// four hierarchy coverage events: on a machine with L2, victim buffer,
// and prefetcher enabled, a single run of the crafted workload must
// light up all of them (they are config-gated "n/a" everywhere else,
// so no other tier would notice if one went dark).
func TestHierarchyCoverageFloor(t *testing.T) {
	obj, err := sdsp.Assemble(hierWorkload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hierConfig(1)
	cov := cover.NewSet()
	cfg.Coverage = cov
	st, err := sdsp.Run(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []cover.Event{
		cover.EvCacheL2Hit,
		cover.EvCacheVictimHit,
		cover.EvCachePrefetchHit,
		cover.EvCachePrefetchEvict,
	} {
		if cov.Count(ev) == 0 {
			t.Errorf("event %v never fired (cache stats: %+v)", ev, st.Cache)
		}
	}
	cs := st.Cache
	if cs.L2Hits == 0 || cs.VictimHits == 0 || cs.PrefetchHits == 0 || cs.PrefetchEvictions == 0 {
		t.Errorf("stats counters incomplete: L2Hits=%d VictimHits=%d PrefetchHits=%d PrefetchEvictions=%d",
			cs.L2Hits, cs.VictimHits, cs.PrefetchHits, cs.PrefetchEvictions)
	}
	// The workload must also verify differentially like everything else.
	if err := sdsp.Verify(obj, cfg); err != nil {
		t.Errorf("hierarchy workload diverges from funcsim: %v", err)
	}
}

// TestFuzzCorpusHitsHierarchy pins the hierarchy-forcing FuzzVerify
// corpus entries to the counters they were chosen for: each entry must
// keep producing victim-buffer hits and prefetch-triggered evictions
// (plus L2 and prefetch hits where noted). If progen's generator or the
// input bit-packing drifts, these entries stop covering the structures
// they document — this test fails instead of the corpus rotting.
func TestFuzzCorpusHitsHierarchy(t *testing.T) {
	cases := []struct {
		name                          string
		progSeed                      int64
		faultSeed, threads, intensity uint64
		wantPFHit, wantL2             bool
	}{
		{"progen-383-full-hier", 383, 9, 4, (7 << 16) + 11, true, true},
		{"progen-326-victim-storm", 326, 9, 4, (7 << 16) + 11, false, false},
		{"progen-382-l2-victim", 382, 9, 4, (7 << 16) + 11, true, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fc := buildFuzzCase(t, c.progSeed, c.faultSeed, c.threads, c.intensity)
			if fc.mix != nil {
				t.Fatalf("entry unexpectedly decodes as heterogeneous")
			}
			st, err := sdsp.Run(fc.obj, fc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cs := st.Cache
			if cs.VictimHits == 0 {
				t.Errorf("no victim-buffer hits: %+v", cs)
			}
			if cs.PrefetchEvictions == 0 {
				t.Errorf("no prefetch-triggered evictions: %+v", cs)
			}
			if c.wantPFHit && cs.PrefetchHits == 0 {
				t.Errorf("no prefetch hits: %+v", cs)
			}
			if c.wantL2 && cs.L2Hits == 0 {
				t.Errorf("no L2 hits: %+v", cs)
			}
		})
	}
}

// TestFuzzCorpusMixedEntries guards the heterogeneous corpus entries'
// decoding: each must select a two-slot mix (not silently fall back to
// a homogeneous run) and drive real cache traffic through it.
func TestFuzzCorpusMixedEntries(t *testing.T) {
	cases := []struct {
		name                          string
		progSeed                      int64
		faultSeed, threads, intensity uint64
	}{
		{"mix-equal-split-victim", 1618, (1 << 18) + 4, 2, (2 << 16) + 3},
		{"mix-pinned-slot-l2-pf", 3141, (2 << 18) + (1 << 16) + 2, 5, (5 << 16) + 7},
		{"mix-both-21regs-pf", -271, (3 << 18) + 6, 3, (4 << 16) + 14},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fc := buildFuzzCase(t, c.progSeed, c.faultSeed, c.threads, c.intensity)
			if fc.mix == nil {
				t.Fatal("entry decodes as homogeneous; mixSel/threads packing drifted")
			}
			if len(fc.mix.Slots) != 2 {
				t.Fatalf("want 2 slots, got %d", len(fc.mix.Slots))
			}
			st, err := sdsp.RunMix(fc.mix, fc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.Cache.Misses == 0 {
				t.Errorf("mixed run produced no cache misses: %+v", st.Cache)
			}
		})
	}
}
