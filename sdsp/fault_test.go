package sdsp_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/sdsp"
)

// Property test for the structured fault model: under ANY deterministic
// fault schedule the pipeline must still produce final memory
// byte-identical to the functional reference — injected faults are
// timing-only. Four paper kernels × 1/2/4 threads × 17 seeds = 204
// schedules, each with per-cycle invariant checking and the watchdog
// armed, so a schedule that corrupts machine state or wedges the core
// fails with a structured diagnostic instead of a wrong answer.

// scheduleFor derives a rate mix from the seed: the named presets in
// rotation, interleaved with custom rate vectors scaled by the seed so
// the corpus isn't limited to preset intensities.
func scheduleFor(seed uint64) *fault.Schedule {
	presets := fault.Presets()
	if seed%2 == 0 {
		r, err := fault.ParseSpec(presets[int(seed/2)%len(presets)])
		if err != nil {
			panic(err)
		}
		return fault.New(seed, r.Rates())
	}
	f := float64(seed%17+1) / 100 // 0.01 .. 0.17
	return fault.New(seed, fault.Rates{
		CacheMiss:  f,
		Writeback:  f / 2,
		FlipBTB:    f,
		Squash:     f / 4,
		SyncGrant:  f / 2,
		SyncWakeup: f / 4,
		FetchMis:   f,
		FetchBlock: f / 2,
		SBHold:     f / 2,
		CWShrink:   f / 4,
	})
}

// kernelsUnder are the four paper kernels the robustness and coverage
// suites schedule: two Livermore loops, the blocked matrix multiply,
// and the branchy sieve.
var kernelsUnder = []string{"LL1", "LL5", "Matrix", "Sieve"}

func TestFaultInjectionPreservesArchitecture(t *testing.T) {
	threadsList := []int{1, 2, 4}
	seeds := 17
	if testing.Short() {
		seeds = 3
	}
	for _, name := range kernelsUnder {
		for _, threads := range threadsList {
			for s := 0; s < seeds; s++ {
				name, threads := name, threads
				seed := uint64(s)*1000 + uint64(threads)*10 + uint64(len(name))
				t.Run(fmt.Sprintf("%s/t%d/seed%d", name, threads, seed), func(t *testing.T) {
					t.Parallel()
					obj, err := sdsp.Workload(name, sdsp.WorkloadParams{Threads: threads})
					if err != nil {
						t.Fatalf("build: %v", err)
					}
					cfg := sdsp.DefaultConfig(threads)
					cfg.Injector = scheduleFor(seed)
					cfg.CheckInvariants = true
					cfg.Watchdog = 200_000
					if err := sdsp.Verify(obj, cfg); err != nil {
						t.Fatalf("schedule %v: %v", cfg.Injector, err)
					}
				})
			}
		}
	}
}

// TestPredictorFetchGridPreservesArchitecture extends the differential
// property net across the frontend design space: every new predictor at
// 1/2/4 threads on all four kernels, with the fetch policy rotating
// deterministically through all six and a fault schedule active, must
// still match the functional reference byte for byte. Predictor and
// fetch-policy state is timing-only; this is the lock on that claim.
func TestPredictorFetchGridPreservesArchitecture(t *testing.T) {
	predictors := []core.PredictorKind{
		sdsp.PredGshare, sdsp.PredGshareThread, sdsp.PredTAGE,
	}
	policies := []core.FetchPolicy{
		sdsp.TrueRR, sdsp.MaskedRR, sdsp.CondSwitch,
		sdsp.ICount, sdsp.ICountFeedback, sdsp.ConfThrottle,
	}
	threadsList := []int{1, 2, 4}
	var combo int
	for _, pred := range predictors {
		for _, name := range kernelsUnder {
			for _, threads := range threadsList {
				pred, name, threads := pred, name, threads
				pol := policies[combo%len(policies)]
				seed := uint64(combo)*100 + uint64(threads)
				combo++
				t.Run(fmt.Sprintf("%v/%v/%s/t%d", pred, pol, name, threads), func(t *testing.T) {
					t.Parallel()
					obj, err := sdsp.Workload(name, sdsp.WorkloadParams{Threads: threads})
					if err != nil {
						t.Fatalf("build: %v", err)
					}
					cfg := sdsp.DefaultConfig(threads)
					cfg.Predictor = pred
					cfg.FetchPolicy = pol
					cfg.Injector = scheduleFor(seed)
					cfg.CheckInvariants = true
					cfg.Watchdog = 200_000
					if err := sdsp.Verify(obj, cfg); err != nil {
						t.Fatalf("schedule %v: %v", cfg.Injector, err)
					}
				})
			}
		}
	}
}

// Every paper kernel must run the full paranoid gauntlet — per-cycle
// invariant checking plus the watchdog — with zero violations, at one
// and four threads.
func TestAllKernelsParanoid(t *testing.T) {
	for _, name := range sdsp.Workloads() {
		for _, threads := range []int{1, 4} {
			name, threads := name, threads
			t.Run(fmt.Sprintf("%s/t%d", name, threads), func(t *testing.T) {
				t.Parallel()
				obj, err := sdsp.Workload(name, sdsp.WorkloadParams{Threads: threads})
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				cfg := sdsp.DefaultConfig(threads)
				cfg.CheckInvariants = true
				cfg.Watchdog = 200_000
				m, err := sdsp.NewMachine(obj, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("paranoid run: %v", err)
				}
				p := sdsp.WorkloadParams{Threads: threads}
				if err := sdsp.CheckWorkload(name, m, obj, p); err != nil {
					t.Fatalf("validation: %v", err)
				}
			})
		}
	}
}

// A forced-miss schedule that out-delays a too-tight watchdog must
// surface as a structured deadlock naming the stalled thread — not as
// an invariant violation, and not as a silent hang. This pins the
// diagnostic quality of the fault model: injected timing faults may
// wedge the machine, but the report must still attribute the wedge.
func TestForcedMissTripsWatchdogAsDeadlock(t *testing.T) {
	obj, err := sdsp.Assemble(`
main: li   r1, xs
loop: lw   r2, 0(r1)
      b    loop
      halt
.data
xs: .word 5
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sdsp.DefaultConfig(1)
	cfg.CheckInvariants = true
	cfg.MaxCycles = 1_000_000
	cfg.Watchdog = 4 // every forced miss is longer than this
	cfg.Injector = fault.New(7, fault.Rates{CacheMiss: 1})
	m, err := sdsp.NewMachine(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil {
		t.Fatal("run finished despite a 4-cycle watchdog under forced misses")
	}
	var me *sdsp.MachineError
	if !errors.As(err, &me) {
		t.Fatalf("error is not a MachineError: %v", err)
	}
	if me.Kind != core.FaultDeadlock {
		t.Fatalf("kind = %v, want deadlock (invariant checking was on): %v", me.Kind, me.Summary())
	}
	if me.Thread < 0 {
		t.Errorf("deadlock did not name the stalled thread: %v", me.Summary())
	}
}

// A fault schedule must actually perturb the machine (otherwise the
// property test above proves nothing): under the heavy preset a kernel
// both slows down and reports injected events in its statistics.
func TestFaultInjectionPerturbsTiming(t *testing.T) {
	obj, err := sdsp.Workload("Matrix", sdsp.WorkloadParams{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sdsp.Run(obj, sdsp.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sdsp.DefaultConfig(4)
	cfg.Injector, err = sdsp.ParseFaultSpec("heavy,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	st, err := sdsp.Run(obj, cfg)
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	if st.Faults.Total() == 0 {
		t.Fatal("heavy schedule injected nothing")
	}
	if st.Cycles <= base.Cycles {
		t.Errorf("heavy schedule did not slow the run: %d vs %d cycles", st.Cycles, base.Cycles)
	}
}
