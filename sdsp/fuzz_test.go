package sdsp_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/progen"
	"repro/sdsp"
)

// fuzzCase is the complete machine setup derived from the four fuzz
// inputs. Exactly one of obj (homogeneous) or mix (heterogeneous pair)
// is non-nil. The derivation lives in buildFuzzCase so the corpus
// counter test (hier_test.go) replays entries bit-for-bit.
type fuzzCase struct {
	obj *sdsp.Object
	mix *sdsp.Mix
	cfg sdsp.Config
	src string // generated source(s), for failure reports
}

// buildFuzzCase decodes the fuzz inputs:
//
//   - threads%6+1 is the thread count; bits 16+ of threads pick the
//     fetch policy.
//   - bits 16–17 of faultSeed pick the branch predictor; bits 18+
//     select a heterogeneous pairing (0 = classic homogeneous run,
//     1–3 = two progen programs with different register-budget splits)
//     that only engages with at least two threads.
//   - intensity%20 scales the fault rates; bits 16–18 of intensity gate
//     the memory hierarchy (bit 16 = L2, bit 17 = victim buffer, bit
//     18 = prefetcher), shrinking the L1 to 1 KB so fuzz-sized programs
//     actually miss into the backside structures; bits 19–23 drive the
//     idle-cycle fast-forward (0 = default, 1–30 = FFMinSkip, 31 =
//     fast-forward disabled), so the fuzzer searches skip-threshold
//     space — every skip length down to FFMinSkip=1 must stay
//     bit-identical under Verify's differential.
//
// Every pre-existing corpus value is below 2^16 in the high halves, so
// old entries keep exercising the paper-default single-level machine
// with the default fast-forward.
func buildFuzzCase(t *testing.T, progSeed int64, faultSeed, threads, intensity uint64) fuzzCase {
	t.Helper()
	n := int(threads%6) + 1
	p := progen.New(progSeed)
	obj, err := sdsp.Assemble(p.Source)
	if err != nil {
		t.Fatalf("progen seed %d emitted unassemblable source: %v", progSeed, err)
	}
	fc := fuzzCase{cfg: sdsp.DefaultConfig(n), src: p.Source}
	fc.cfg.Predictor = core.PredictorKind((faultSeed >> 16) % 4)
	fc.cfg.FetchPolicy = core.FetchPolicy((threads >> 16) % 6)
	if fc.cfg.Predictor != sdsp.PredTwoBit {
		fc.cfg.BTBEntries = 64
	}
	if hier := (intensity >> 16) % 8; hier != 0 {
		fc.cfg.Cache.SizeBytes = 1024 // 1 KB L1: progen footprints spill
		if (hier & 1) != 0 {
			fc.cfg.Cache.L2 = cache.DefaultL2()
		}
		if (hier & 2) != 0 {
			fc.cfg.Cache.VictimEntries = 8
		}
		if (hier & 4) != 0 {
			fc.cfg.Cache.Prefetch = true
		}
	}
	switch ff := (intensity >> 19) % 32; {
	case ff == 31:
		fc.cfg.NoFastForward = true
	case ff > 0:
		fc.cfg.FFMinSkip = int(ff) // 1..30: aggressive through lazy thresholds
	}
	fc.cfg.CheckInvariants = true
	fc.cfg.Watchdog = 200_000
	if r := float64(intensity%20) / 100; r > 0 { // 0 .. 0.19
		fc.cfg.Injector = fault.New(faultSeed, fault.Rates{
			CacheMiss:  r,
			Writeback:  r / 2,
			FlipBTB:    r,
			Squash:     r / 4,
			SyncGrant:  r / 2,
			SyncWakeup: r / 4,
			FetchMis:   r,
			FetchBlock: r / 2,
			SBHold:     r / 2,
			CWShrink:   r / 4,
		})
	}

	mixSel := (faultSeed >> 18) % 4
	if mixSel == 0 || n < 2 {
		fc.obj = obj
		return fc
	}
	// Heterogeneous pair: a second progen program in its own slot. The
	// three variants differ in how the 128 physical registers are split
	// (0 = equal share of the total partition; 21 is progen's own need,
	// the tightest budget it assembles under).
	var seedB int64
	var regsA, regsB int
	switch mixSel {
	case 1:
		seedB = progSeed + 1
	case 2:
		seedB, regsA = progSeed^0x5a5a, 21
	case 3:
		seedB, regsA, regsB = 3*progSeed+7, 21, 21
	}
	pb := progen.New(seedB)
	objB, err := sdsp.Assemble(pb.Source)
	if err != nil {
		t.Fatalf("progen seed %d emitted unassemblable source: %v", seedB, err)
	}
	ka := n - n/2
	fc.mix = &sdsp.Mix{Slots: []sdsp.MixSlot{
		{Object: obj, Threads: ka, Regs: regsA},
		{Object: objB, Threads: n - ka, Regs: regsB},
	}}
	fc.src = p.Source + "\n; --- slot B ---\n" + pb.Source
	return fc
}

// FuzzVerify feeds randomly generated SPMD programs through the full
// differential pipeline (funcsim vs timing core) under seeded fault
// schedules, with per-cycle invariant checking on. Any divergence in
// final memory, any invariant violation, and any deadlock is a crash
// the fuzzer minimizes. The generator's seed is the fuzz input, so
// every interesting program is reproducible from the corpus entry.
// See buildFuzzCase for how the inputs select predictor, fetch policy,
// memory hierarchy, and heterogeneous pairings.
//
// Seed corpus lives in testdata/fuzz/FuzzVerify; run with
//
//	go test ./sdsp -fuzz FuzzVerify -fuzztime 30s
func FuzzVerify(f *testing.F) {
	f.Add(int64(1), uint64(0), uint64(4), uint64(0))                      // plain program, no faults
	f.Add(int64(424242), uint64(7), uint64(4), uint64(5))                 // medium faults
	f.Add(int64(31337), uint64(3), uint64(1), uint64(9))                  // single thread, heavy
	f.Add(int64(99), uint64(12), uint64(6), uint64(2))                    // full thread house
	f.Add(int64(-5), uint64(1), uint64(2), uint64(13))                    // negative seed, storm range
	f.Add(int64(9001), uint64((1<<16)+7), uint64(4), uint64(8))           // gshare, small BTB aliasing
	f.Add(int64(-777), uint64((2<<16)+11), uint64((3<<16)+3), uint64(12)) // gshare-pt under ICount
	f.Add(int64(4242), uint64((3<<16)+1), uint64(2), uint64(15))          // TAGE tag aliasing, faults on
	f.Add(int64(808), uint64(5), uint64((4<<16)+5), uint64(6))            // ICOUNT-feedback hold path
	f.Add(int64(13579), uint64((3<<16)+2), uint64((5<<16)+1), uint64(10)) // TAGE + confidence throttle
	// Hierarchy + heterogeneous entries. The first three were chosen by
	// sweeping progen seeds under the full 1 KB-L1 + L2 + victim +
	// prefetch configuration for programs whose access streams actually
	// force victim-buffer hits and prefetch-triggered evictions; the
	// counters are asserted non-zero by TestFuzzCorpusHitsHierarchy
	// (hier_test.go), so these entries can't silently rot into no-ops.
	f.Add(int64(383), uint64(9), uint64(4), uint64((7<<16)+11))                 // full hierarchy: victim hits, L2 hits, prefetch hits AND evictions
	f.Add(int64(326), uint64(9), uint64(4), uint64((7<<16)+11))                 // heavy victim ping-pong (~200 victim hits) + prefetch evictions
	f.Add(int64(382), uint64(9), uint64(4), uint64((7<<16)+11))                 // victim + L2 + prefetch-eviction mix on a third access pattern
	f.Add(int64(1618), uint64((1<<18)+4), uint64(2), uint64((2<<16)+3))         // heterogeneous pair (equal split) + victim-only hierarchy
	f.Add(int64(3141), uint64((2<<18)+(1<<16)+2), uint64(5), uint64((5<<16)+7)) // L2+prefetch, gshare, 6-thread mixed pair with a pinned 21-reg slot
	f.Add(int64(-271), uint64((3<<18)+6), uint64(3), uint64((4<<16)+14))        // prefetch only, both slots on the 21-reg budget, heavy faults
	// Fast-forward threshold entries (bits 19–23 of intensity) pin the
	// extremes of the skip-threshold space the fuzzer now searches. The
	// aggressive entry is asserted to actually batch cycles by
	// TestFuzzCorpusExercisesFastForward (ffdiff_test.go), so it cannot
	// silently rot into a no-op.
	f.Add(int64(2718), uint64(6), uint64(4), uint64((1<<19)+4))           // FFMinSkip=1: every inert gap becomes a skip
	f.Add(int64(-1414), uint64((1<<16)+9), uint64(2), uint64((30<<19)+7)) // FFMinSkip=30: only long stalls batch, gshare predictor
	f.Add(int64(161803), uint64(8), uint64(5), uint64((31<<19)+11))       // fast-forward disabled: plain stepping under faults
	f.Add(int64(2718), uint64(6), uint64(4), uint64((31<<19)+4))          // the FFMinSkip=1 case again with fast-forward off
	f.Fuzz(func(t *testing.T, progSeed int64, faultSeed, threads, intensity uint64) {
		fc := buildFuzzCase(t, progSeed, faultSeed, threads, intensity)
		var err error
		if fc.mix != nil {
			err = sdsp.VerifyMix(fc.mix, fc.cfg)
		} else {
			err = sdsp.Verify(fc.obj, fc.cfg)
		}
		if err != nil {
			t.Fatalf("seed %d threads %d pred %v fetch %v schedule %v: %v\n%s",
				progSeed, fc.cfg.Threads, fc.cfg.Predictor, fc.cfg.FetchPolicy, fc.cfg.Injector, err, fc.src)
		}
	})
}
