package sdsp_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/progen"
	"repro/sdsp"
)

// FuzzVerify feeds randomly generated SPMD programs through the full
// differential pipeline (funcsim vs timing core) under seeded fault
// schedules, with per-cycle invariant checking on. Any divergence in
// final memory, any invariant violation, and any deadlock is a crash
// the fuzzer minimizes. The generator's seed is the fuzz input, so
// every interesting program is reproducible from the corpus entry.
//
// The high halves of faultSeed and threads select the frontend: bits
// 16+ of faultSeed pick the branch predictor and bits 16+ of threads
// pick the fetch policy. Every pre-existing corpus value is below
// 2^16, so the old entries keep exercising the paper default (2-bit
// predictor, TrueRR fetch) unchanged. Non-default predictors run with
// a 64-entry BTB so gshare PHT and TAGE tag aliasing actually happen
// at fuzz-sized programs.
//
// Seed corpus lives in testdata/fuzz/FuzzVerify; run with
//
//	go test ./sdsp -fuzz FuzzVerify -fuzztime 30s
func FuzzVerify(f *testing.F) {
	f.Add(int64(1), uint64(0), uint64(4), uint64(0))                      // plain program, no faults
	f.Add(int64(424242), uint64(7), uint64(4), uint64(5))                 // medium faults
	f.Add(int64(31337), uint64(3), uint64(1), uint64(9))                  // single thread, heavy
	f.Add(int64(99), uint64(12), uint64(6), uint64(2))                    // full thread house
	f.Add(int64(-5), uint64(1), uint64(2), uint64(13))                    // negative seed, storm range
	f.Add(int64(9001), uint64((1<<16)+7), uint64(4), uint64(8))           // gshare, small BTB aliasing
	f.Add(int64(-777), uint64((2<<16)+11), uint64((3<<16)+3), uint64(12)) // gshare-pt under ICount
	f.Add(int64(4242), uint64((3<<16)+1), uint64(2), uint64(15))          // TAGE tag aliasing, faults on
	f.Add(int64(808), uint64(5), uint64((4<<16)+5), uint64(6))            // ICOUNT-feedback hold path
	f.Add(int64(13579), uint64((3<<16)+2), uint64((5<<16)+1), uint64(10)) // TAGE + confidence throttle
	f.Fuzz(func(t *testing.T, progSeed int64, faultSeed, threads, intensity uint64) {
		n := int(threads%6) + 1
		p := progen.New(progSeed)
		obj, err := sdsp.Assemble(p.Source)
		if err != nil {
			t.Fatalf("progen seed %d emitted unassemblable source: %v", progSeed, err)
		}
		cfg := sdsp.DefaultConfig(n)
		cfg.Predictor = core.PredictorKind((faultSeed >> 16) % 4)
		cfg.FetchPolicy = core.FetchPolicy((threads >> 16) % 6)
		if cfg.Predictor != sdsp.PredTwoBit {
			cfg.BTBEntries = 64
		}
		cfg.CheckInvariants = true
		cfg.Watchdog = 200_000
		if r := float64(intensity%20) / 100; r > 0 { // 0 .. 0.19
			cfg.Injector = fault.New(faultSeed, fault.Rates{
				CacheMiss:  r,
				Writeback:  r / 2,
				FlipBTB:    r,
				Squash:     r / 4,
				SyncGrant:  r / 2,
				SyncWakeup: r / 4,
				FetchMis:   r,
				FetchBlock: r / 2,
				SBHold:     r / 2,
				CWShrink:   r / 4,
			})
		}
		if err := sdsp.Verify(obj, cfg); err != nil {
			t.Fatalf("seed %d threads %d pred %v fetch %v schedule %v: %v\n%s",
				progSeed, n, cfg.Predictor, cfg.FetchPolicy, cfg.Injector, err, p.Source)
		}
	})
}
