package sdsp_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/progen"
	"repro/sdsp"
)

// FuzzVerify feeds randomly generated SPMD programs through the full
// differential pipeline (funcsim vs timing core) under seeded fault
// schedules, with per-cycle invariant checking on. Any divergence in
// final memory, any invariant violation, and any deadlock is a crash
// the fuzzer minimizes. The generator's seed is the fuzz input, so
// every interesting program is reproducible from the corpus entry.
//
// Seed corpus lives in testdata/fuzz/FuzzVerify; run with
//
//	go test ./sdsp -fuzz FuzzVerify -fuzztime 30s
func FuzzVerify(f *testing.F) {
	f.Add(int64(1), uint64(0), uint64(4), uint64(0))      // plain program, no faults
	f.Add(int64(424242), uint64(7), uint64(4), uint64(5)) // medium faults
	f.Add(int64(31337), uint64(3), uint64(1), uint64(9))  // single thread, heavy
	f.Add(int64(99), uint64(12), uint64(6), uint64(2))    // full thread house
	f.Add(int64(-5), uint64(1), uint64(2), uint64(13))    // negative seed, storm range
	f.Fuzz(func(t *testing.T, progSeed int64, faultSeed, threads, intensity uint64) {
		n := int(threads%6) + 1
		p := progen.New(progSeed)
		obj, err := sdsp.Assemble(p.Source)
		if err != nil {
			t.Fatalf("progen seed %d emitted unassemblable source: %v", progSeed, err)
		}
		cfg := sdsp.DefaultConfig(n)
		cfg.CheckInvariants = true
		cfg.Watchdog = 200_000
		if r := float64(intensity%20) / 100; r > 0 { // 0 .. 0.19
			cfg.Injector = fault.New(faultSeed, fault.Rates{
				CacheMiss:  r,
				Writeback:  r / 2,
				FlipBTB:    r,
				Squash:     r / 4,
				SyncGrant:  r / 2,
				SyncWakeup: r / 4,
				FetchMis:   r,
				FetchBlock: r / 2,
				SBHold:     r / 2,
				CWShrink:   r / 4,
			})
		}
		if err := sdsp.Verify(obj, cfg); err != nil {
			t.Fatalf("seed %d threads %d schedule %v: %v\n%s",
				progSeed, n, cfg.Injector, err, p.Source)
		}
	})
}
