package sdsp_test

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/loader"
	"repro/sdsp"
)

// Differential tier for heterogeneous mode. Every mixed pairing must
// retire architectural state identical to the functional reference under
// deterministic fault schedules, with per-cycle invariant checking (which
// now asserts slot isolation) and the watchdog armed; and each program of
// a mix must retire exactly the state it retires when run solo, so
// multiprogramming is architecturally invisible. Three pairings ×
// 1/2/4/6 threads × 17 seeds = 204 schedules, the same budget as the
// homogeneous fault tier; the memory-hierarchy configuration rotates
// with the seed so L2, victim buffer, and prefetcher all run under fire.

// Small MiniC workloads for mix testing: the same shapes the compiler
// study uses (inner product, blocked matrix multiply) scaled down so a
// 204-schedule differential sweep stays fast.
const mixDotSrc = `
int n = 96;
float xs[96];
float zs[96];
float partial[6];
float q;

void main() {
	int i; int lo; int hi; float acc;
	lo = tid() * n / nth();
	hi = (tid() + 1) * n / nth();
	for (i = lo; i < hi; i = i + 1) {
		xs[i] = itof(i % 23) * 0.125;
		zs[i] = itof(i % 19) * 0.25;
	}
	barrier();
	acc = 0.0;
	for (i = lo; i < hi; i = i + 1) {
		acc = acc + xs[i] * zs[i];
	}
	partial[tid()] = acc;
	barrier();
	if (tid() == 0) {
		acc = 0.0;
		for (i = 0; i < nth(); i = i + 1) { acc = acc + partial[i]; }
		q = acc;
	}
}
`

const mixMatSrc = `
int n = 9;
float a[81];
float b[81];
float c[81];

void main() {
	int i; int j; int k; int lo; int hi; float acc;
	lo = tid() * n / nth();
	hi = (tid() + 1) * n / nth();
	for (i = lo; i < hi; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			a[i * n + j] = itof((i * 7 + j * 3) % 11) * 0.25 - 1.0;
			b[i * n + j] = itof((i * 5 + j * 13) % 9) * 0.5 - 2.0;
		}
	}
	barrier();
	for (i = lo; i < hi; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			acc = 0.0;
			for (k = 0; k < n; k = k + 1) {
				acc = acc + a[i * n + k] * b[k * n + j];
			}
			c[i * n + j] = acc;
		}
	}
}
`

// mixPairing names one unlike-kernel pairing and knows how to build it
// for any total thread count. At one thread the mix degenerates to its
// first slot alone, still exercising the heterogeneous layout machinery.
type mixPairing struct {
	name  string
	build func(t *testing.T, threads int) *sdsp.Mix
}

// kernelSlot builds a paper kernel for a k-thread slot group.
func kernelSlot(t *testing.T, name string, k int) sdsp.MixSlot {
	t.Helper()
	obj, err := sdsp.Workload(name, sdsp.WorkloadParams{Threads: k})
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return sdsp.MixSlot{Object: obj, Threads: k}
}

// minicSlot compiles a MiniC program for a k-thread slot group with an
// explicit (lean) register budget.
func minicSlot(t *testing.T, src string, k, regs int) sdsp.MixSlot {
	t.Helper()
	obj, err := sdsp.CompileMiniC(src, regs)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return sdsp.MixSlot{Object: obj, Threads: k, Regs: regs}
}

// split halves a total thread count between two slots (first slot gets
// the remainder); a total of one means a single-slot mix.
func split(total int) (a, b int) {
	b = total / 2
	return total - b, b
}

func mixPairings(t *testing.T) []mixPairing {
	return []mixPairing{
		{"LL1+Sieve", func(t *testing.T, threads int) *sdsp.Mix {
			a, b := split(threads)
			slots := []sdsp.MixSlot{kernelSlot(t, "LL1", a)}
			if b > 0 {
				slots = append(slots, kernelSlot(t, "Sieve", b))
			}
			return &sdsp.Mix{Slots: slots}
		}},
		{"Matrix+lean", func(t *testing.T, threads int) *sdsp.Mix {
			a, b := split(threads)
			slots := []sdsp.MixSlot{kernelSlot(t, "Matrix", a)}
			if b > 0 {
				slots = append(slots, minicSlot(t, mixDotSrc, b, 12))
			}
			return &sdsp.Mix{Slots: slots}
		}},
		{"MatC+DotC", func(t *testing.T, threads int) *sdsp.Mix {
			a, b := split(threads)
			slots := []sdsp.MixSlot{minicSlot(t, mixMatSrc, a, 16)}
			if b > 0 {
				slots = append(slots, minicSlot(t, mixDotSrc, b, 12))
			}
			return &sdsp.Mix{Slots: slots}
		}},
	}
}

// hierarchyFor rotates the memory-hierarchy configuration with the
// schedule seed: baseline L1-only, L1+L2, and the full L1+L2+victim+
// prefetch stack on a shrunken L1 (so the backside structures actually
// see misses). All of it is timing-only, so the differential property
// must hold under every variant.
func hierarchyFor(cfg *sdsp.Config, seed uint64) string {
	switch seed % 3 {
	case 1:
		cfg.Cache.L2 = cache.DefaultL2()
		return "l2"
	case 2:
		cfg.Cache.SizeBytes = 1024
		cfg.Cache.L2 = cache.DefaultL2()
		cfg.Cache.VictimEntries = 4
		cfg.Cache.Prefetch = true
		return "full"
	default:
		return "l1"
	}
}

func TestMixFaultInjectionPreservesArchitecture(t *testing.T) {
	threadsList := []int{1, 2, 4, 6}
	seeds := 17
	if testing.Short() {
		seeds = 3
	}
	for _, p := range mixPairings(t) {
		for _, threads := range threadsList {
			for s := 0; s < seeds; s++ {
				p, threads := p, threads
				seed := uint64(s)*1000 + uint64(threads)*10 + uint64(len(p.name))
				t.Run(fmt.Sprintf("%s/t%d/seed%d", p.name, threads, seed), func(t *testing.T) {
					t.Parallel()
					mix := p.build(t, threads)
					cfg := sdsp.DefaultConfig(threads)
					cfg.Injector = scheduleFor(seed)
					cfg.CheckInvariants = true
					cfg.Watchdog = 200_000
					hier := hierarchyFor(&cfg, seed)
					if err := sdsp.VerifyMix(mix, cfg); err != nil {
						t.Fatalf("hier=%s schedule %v: %v", hier, cfg.Injector, err)
					}
				})
			}
		}
	}
}

// TestMixSoloIdentity pins the multiprogramming-invisibility property:
// a program's slot in a mixed run must retire byte-for-byte the memory
// image and register file it retires when its thread group runs solo.
// TID/NTH are slot-virtual and each slot owns a private 2 MiB window,
// so interference may change timing but never architectural state.
func TestMixSoloIdentity(t *testing.T) {
	for _, threads := range []int{2, 4, 6} {
		for _, p := range mixPairings(t) {
			p, threads := p, threads
			t.Run(fmt.Sprintf("%s/t%d", p.name, threads), func(t *testing.T) {
				t.Parallel()
				mix := p.build(t, threads)
				cfg := sdsp.DefaultConfig(threads)
				cfg.CheckInvariants = true
				cfg.Watchdog = 200_000
				m, err := sdsp.NewMixMachine(mix, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("mixed run: %v", err)
				}
				mixed := m.Memory().Snapshot()

				globalT := 0
				for si, slot := range mix.Slots {
					// Solo oracle: the same object on its own machine at
					// the slot's group size.
					solo, err := sdsp.RunFunctional(slot.Object, slot.Threads)
					if err != nil {
						t.Fatalf("solo slot %d: %v", si, err)
					}
					soloMem := solo.Memory().Snapshot()
					base := loader.SlotBase(si) / 4
					for i, want := range soloMem {
						if got := mixed[base+uint32(i)]; got != want {
							t.Fatalf("slot %d memory diverges at %#x: mixed %#x, solo %#x",
								si, i*4, got, want)
						}
					}
					// Registers the program never touches are zero in both
					// runs, so comparing the full solo budget is safe even
					// when the mixed slot's budget is smaller.
					for k := 0; k < slot.Threads; k++ {
						for r := 1; r < solo.RegBudget(k); r++ {
							if got, want := m.Reg(globalT, r), solo.Reg(k, r); got != want {
								t.Fatalf("slot %d thread %d r%d: mixed %#x, solo %#x",
									si, k, r, got, want)
							}
						}
						globalT++
					}
				}
			})
		}
	}
}
