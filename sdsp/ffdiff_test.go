package sdsp_test

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cover"
	"repro/sdsp"
)

// Fast-forward neutrality differential: the idle-cycle fast-forward
// (internal/core/ffwd.go) claims to be invisible — a run with it
// enabled must be bit-identical to the same run stepped cycle by
// cycle. This tier replays the robustness suite's 204 fault schedules
// (four paper kernels × 1/2/4 threads × 17 seeds, the exact corpus of
// TestFaultInjectionPreservesArchitecture) twice, fast-forward off
// then on, and requires identical cycle counts, identical statistics
// field for field (including injected-fault counters), and identical
// coverage sets. Fault schedules are the adversarial case: injectors
// fire on absolute cycle numbers, so a fast-forward that mis-replays
// even one perturbation shifts every cycle after it.

// runOnce executes one kernel/schedule combination and returns its
// stats, coverage set, and how many cycles the fast-forward batched.
func runOnce(t *testing.T, name string, threads int, seed uint64, noFF bool) (*sdsp.Stats, *cover.Set, uint64) {
	t.Helper()
	obj, err := sdsp.Workload(name, sdsp.WorkloadParams{Threads: threads})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := sdsp.DefaultConfig(threads)
	cfg.NoFastForward = noFF
	cfg.Injector = scheduleFor(seed) // fresh schedule: injectors are stateful
	cfg.Coverage = cover.NewSet()
	cfg.Watchdog = 200_000
	m, err := sdsp.NewMachine(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run (noFF=%v): %v", noFF, err)
	}
	return st, cfg.Coverage, m.FFSkipped()
}

func TestFastForwardDifferential(t *testing.T) {
	threadsList := []int{1, 2, 4}
	seeds := 17
	if testing.Short() {
		seeds = 3
	}
	var engaged atomic.Uint64
	// The inner group barrier means every parallel subtest has finished
	// (and added its skip count) before the vacuity check below runs.
	t.Run("group", func(t *testing.T) {
		for _, name := range kernelsUnder {
			for _, threads := range threadsList {
				for s := 0; s < seeds; s++ {
					name, threads := name, threads
					seed := uint64(s)*1000 + uint64(threads)*10 + uint64(len(name))
					t.Run(fmt.Sprintf("%s/t%d/seed%d", name, threads, seed), func(t *testing.T) {
						t.Parallel()
						base, baseCov, baseSkip := runOnce(t, name, threads, seed, true)
						if baseSkip != 0 {
							t.Fatalf("NoFastForward run still skipped %d cycles", baseSkip)
						}
						ff, ffCov, ffSkip := runOnce(t, name, threads, seed, false)
						if base.Cycles != ff.Cycles {
							t.Fatalf("cycle counts diverge: plain %d, fast-forward %d", base.Cycles, ff.Cycles)
						}
						diffCoverage(t, baseCov, ffCov)
						// Stats carries the coverage pointer; null it on both so
						// the remaining comparison is pure counters.
						base.Coverage, ff.Coverage = nil, nil
						if !reflect.DeepEqual(base, ff) {
							t.Fatalf("stats diverge:\nplain:        %+v\nfast-forward: %+v", base, ff)
						}
						engaged.Add(ffSkip)
					})
				}
			}
		}
	})
	// Neutrality proven on a fast-forward that never engages would be
	// vacuous; the corpus must include real skips.
	if got := engaged.Load(); got == 0 {
		t.Fatal("fast-forward never engaged across the whole 204-schedule corpus")
	} else {
		t.Logf("fast-forward batched %d cycles across the corpus", got)
	}
}

// TestFuzzCorpusExercisesFastForward replays the pinned fast-forward
// corpus entries of FuzzVerify and asserts they do what their comments
// claim: the aggressive-threshold entry decodes to FFMinSkip=1 and
// actually batches cycles, and the ff=31 entries decode to a disabled
// fast-forward. Without this the threshold bits could drift and the
// corpus would silently stop covering the fast-forward.
func TestFuzzCorpusExercisesFastForward(t *testing.T) {
	fc := buildFuzzCase(t, 2718, 6, 4, (1<<19)+4)
	if fc.cfg.NoFastForward || fc.cfg.FFMinSkip != 1 {
		t.Fatalf("aggressive entry decoded FFMinSkip=%d NoFastForward=%v, want 1/false",
			fc.cfg.FFMinSkip, fc.cfg.NoFastForward)
	}
	m, err := sdsp.NewMachine(fc.obj, fc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.FFSkipped() == 0 {
		t.Fatal("FFMinSkip=1 corpus entry never engaged the fast-forward")
	}
	if lazy := buildFuzzCase(t, -1414, (1<<16)+9, 2, (30<<19)+7); lazy.cfg.FFMinSkip != 30 {
		t.Fatalf("lazy entry decoded FFMinSkip=%d, want 30", lazy.cfg.FFMinSkip)
	}
	for _, in := range [][4]uint64{{161803, 8, 5, (31 << 19) + 11}, {2718, 6, 4, (31 << 19) + 4}} {
		if off := buildFuzzCase(t, int64(in[0]), in[1], in[2], in[3]); !off.cfg.NoFastForward {
			t.Fatalf("entry %v did not decode to NoFastForward", in)
		}
	}
}

// diffCoverage compares two coverage sets event by event, naming any
// mismatch (a raw DeepEqual failure on the whole set would not).
func diffCoverage(t *testing.T, a, b *cover.Set) {
	t.Helper()
	for _, e := range cover.Events() {
		if ca, cb := a.Count(e), b.Count(e); ca != cb {
			t.Errorf("coverage %v diverges: plain %d, fast-forward %d", e, ca, cb)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
}
