package sdsp

import (
	"strings"
	"testing"
)

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 11 {
		t.Fatalf("got %d workloads, want the paper's 11", len(names))
	}
	for _, want := range []string{"LL1", "LL5", "Matrix", "Water", "Sieve"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %q missing", want)
		}
	}
}

func TestWorkloadRunAndCheck(t *testing.T) {
	p := WorkloadParams{Threads: 2}
	obj, err := Workload("Matrix", p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	m, err := NewMachine(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 || st.IPC() <= 0 {
		t.Errorf("stats: %+v", st)
	}
	if err := CheckWorkload("Matrix", m, obj, p); err != nil {
		t.Errorf("golden check failed: %v", err)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Workload("nope", WorkloadParams{Threads: 1}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAssembleRunVerify(t *testing.T) {
	obj, err := Assemble(`
		main: tid  r1
		      addi r2, r1, 3
		      slli r3, r1, 2
		      li   r4, out
		      add  r4, r4, r3
		      sw   r2, 0(r4)
		      halt
		.data
		out: .space 16
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(obj, DefaultConfig(4)); err != nil {
		t.Errorf("Verify: %v", err)
	}
	st, err := Run(obj, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed == 0 {
		t.Error("nothing committed")
	}
}

func TestRunFunctional(t *testing.T) {
	obj, err := Assemble("main: addi r1, r0, 9\n halt")
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunFunctional(obj, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Reg(0, 1) != 9 {
		t.Errorf("r1 = %d, want 9", s.Reg(0, 1))
	}
}

func TestDisassemble(t *testing.T) {
	obj, err := Assemble("main: add r1, r2, r3\n halt")
	if err != nil {
		t.Fatal(err)
	}
	lines := Disassemble(obj)
	if len(lines) != 2 || !strings.Contains(lines[0], "add r1, r2, r3") {
		t.Errorf("disassembly = %q", lines)
	}
}

func TestDefaultConfigThreads(t *testing.T) {
	cfg := DefaultConfig(3)
	if cfg.Threads != 3 {
		t.Errorf("threads = %d", cfg.Threads)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(80, 100); got < 0.2499 || got > 0.2501 {
		t.Errorf("speedup = %v, want 0.25", got)
	}
}

func TestVerifyCatchesNothingOnGoodPrograms(t *testing.T) {
	for _, name := range []string{"LL5", "Sieve"} {
		obj, err := Workload(name, WorkloadParams{Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(obj, DefaultConfig(3)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
