package sdsp_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/progen"
	"repro/sdsp"
)

var updateCoverGolden = flag.Bool("update", false, "rewrite testdata/coverage_gaps.golden")

// mergeSets folds src into *dst clone-first: merging into a fresh
// NewSet would wrongly mark every event applicable.
func mergeSets(dst **cover.Set, src *cover.Set) {
	if *dst == nil {
		*dst = src.Clone()
	} else {
		(*dst).Merge(src)
	}
}

// TestKernelCoverage is the kernel half of the coverage floor: the four
// paper kernels the robustness suite schedules, merged at the default
// operating point (4 threads, TrueRR), must reach at least 90% of the
// applicable core-tier events. Stress-tier events are excluded here —
// they are the generated corpus's job (TestCoverageFloor).
func TestKernelCoverage(t *testing.T) {
	var merged *cover.Set
	for _, name := range kernelsUnder {
		obj, err := sdsp.Workload(name, sdsp.WorkloadParams{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		cfg := sdsp.DefaultConfig(4)
		cfg.Coverage = cover.NewSet()
		if _, err := sdsp.Run(obj, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%-8s %s", name, cfg.Coverage.Summary())
		mergeSets(&merged, cfg.Coverage)
	}
	t.Logf("merged   %s", merged.Summary())
	if frac := merged.CoreFraction(); frac < 0.9 {
		var gaps []string
		for _, e := range merged.Gaps() {
			if !e.Describe().Stress {
				gaps = append(gaps, e.String())
			}
		}
		t.Errorf("merged kernel core coverage %.1f%% < 90%%; core gaps: %v", 100*frac, gaps)
	}
}

// coverEval is the Guided search's fitness probe: assemble the
// candidate, run the full differential check (functional reference vs
// timing core) at 1 and 4 threads with coverage recording on, and
// return the merged events. Both thread counts matter: wrong-path
// fetch past the text end only happens when a thread fetches every
// cycle (single thread), while the sharing and contention events need
// the full house. A verification failure is a real divergence and
// fails the search.
func coverEval(p progen.Program) (*cover.Set, error) {
	obj, err := sdsp.Assemble(p.Source)
	if err != nil {
		return nil, err
	}
	var merged *cover.Set
	for _, threads := range []int{1, 4} {
		cfg := sdsp.DefaultConfig(threads)
		cfg.Coverage = cover.NewSet()
		cfg.Watchdog = 500_000
		if err := sdsp.Verify(obj, cfg); err != nil {
			return nil, err
		}
		mergeSets(&merged, cfg.Coverage)
	}
	return merged, nil
}

// TestCoverageFloor proves the corpus half of the floor: unguided
// random programs leave must-hit events unreached (the committed golden
// names them), and the coverage-guided generator closes every one of
// them — the merged corpus has no must-hit gaps at all.
func TestCoverageFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("guided search is not -short")
	}

	// Baseline: a modest unguided corpus, the same generator the fuzzer
	// seeds from.
	var baseline *cover.Set
	for seed := int64(0); seed < 25; seed++ {
		s, err := coverEval(progen.New(seed))
		if err != nil {
			t.Fatalf("unguided seed %d: %v", seed, err)
		}
		mergeSets(&baseline, s)
	}
	gaps := baseline.MustHitGaps()
	if len(gaps) == 0 {
		t.Fatal("unguided corpus already reaches every must-hit event; the guided search is untestable (tighten the event model)")
	}
	var names []string
	for _, e := range gaps {
		names = append(names, e.String())
	}
	sort.Strings(names)
	t.Logf("unguided corpus: %s; must-hit gaps: %v", baseline.Summary(), names)

	golden := filepath.Join("testdata", "coverage_gaps.golden")
	want := strings.Join(names, "\n") + "\n"
	if *updateCoverGolden {
		if err := os.WriteFile(golden, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != want {
		t.Errorf("unguided gap list drifted from golden (run with -update if intended):\ngot:\n%swant:\n%s", want, got)
	}

	// The guided search must close every remaining gap.
	corpus, guided, err := progen.Guided(1996, 48, coverEval)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("guided search kept %d programs: %s", len(corpus), guided.Summary())
	merged := baseline.Clone()
	merged.Merge(guided)
	if rest := merged.MustHitGaps(); len(rest) != 0 {
		var left []string
		for _, e := range rest {
			left = append(left, e.String())
		}
		t.Errorf("guided corpus left must-hit gaps: %v", left)
	}
	// Each gap must be closed by the guided programs themselves, not by
	// baseline noise: that is the search's entire reason to exist.
	for _, e := range gaps {
		if guided == nil || guided.Count(e) == 0 {
			t.Errorf("gap %v was not reached by the guided corpus", e)
		}
	}
}
