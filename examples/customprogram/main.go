// Custom program: write an SDSP-32 parallel program from scratch —
// a multithreaded dot product with a software barrier over the flag
// segment — assemble it, verify it against the functional reference
// simulator, and time it on the pipeline.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/sdsp"
)

// The program follows the paper's homogeneous multitasking model: all
// threads execute the same code on different slices of the data.
const src = `
; dot product of two 256-element vectors across N threads
main:   tid   r1
        nth   r2
        ; slice [lo, hi) of [0, 256)
        addi  r3, r0, 256
        div   r4, r3, r2       ; chunk
        mul   r3, r1, r4       ; lo
        add   r4, r3, r4       ; hi
        addi  r5, r2, -1
        bne   r1, r5, go
        addi  r4, r0, 256      ; last thread takes the remainder
go:     fli   r6, 0.0          ; accumulator
        slli  r7, r3, 2
        li    r8, xs
        add   r8, r8, r7
        li    r9, ys
        add   r9, r9, r7
loop:   lw    r10, 0(r8)
        lw    r11, 0(r9)
        fmul  r10, r10, r11
        fadd  r6, r6, r10
        addi  r8, r8, 4
        addi  r9, r9, 4
        addi  r3, r3, 1
        blt   r3, r4, loop
        ; publish the partial sum, then barrier
        slli  r7, r1, 2
        li    r8, partial
        add   r8, r8, r7
        sw    r6, 0(r8)
        li    r12, arrivals
        fai   r13, 0(r12)
spin:   fldw  r13, 0(r12)
        bne   r13, r2, spin
        ; thread 0 reduces
        bne   r1, r0, done
        fli   r6, 0.0
        li    r8, partial
        addi  r3, r0, 0
red:    lw    r10, 0(r8)
        fadd  r6, r6, r10
        addi  r8, r8, 4
        addi  r3, r3, 1
        bne   r3, r2, red
        li    r8, result
        sw    r6, 0(r8)
done:   halt
.data
xs:       .space 1024
ys:       .space 1024
partial:  .space 24
result:   .word 0
.flags
arrivals: .space 4
`

func main() {
	obj, err := sdsp.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions\n", len(obj.Text))

	// Vectors are zero here (data segments initialize to zero); real
	// programs would use .float directives. Expected dot product: 0.
	const threads = 4
	cfg := sdsp.DefaultConfig(threads)

	// First make sure the program is architecturally correct: the
	// pipeline and the in-order reference simulator must agree.
	if err := sdsp.Verify(obj, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline matches the functional reference simulator")

	m, err := sdsp.NewMachine(obj, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	resultAddr, err := obj.Symbol("result")
	if err != nil {
		log.Fatal(err)
	}
	result := math.Float32frombits(m.Memory().LoadWord(resultAddr))
	fmt.Printf("dot product = %v (expected 0 for zero vectors)\n", result)
	fmt.Printf("%d cycles, %d instructions committed, IPC %.2f\n",
		st.Cycles, st.Committed, st.IPC())
	fmt.Printf("branch prediction accuracy %.1f%%, cache hit rate %.1f%%\n",
		100*st.Branch.Accuracy(), 100*st.Cache.HitRate())
}
