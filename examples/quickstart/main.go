// Quickstart: run one of the paper's benchmarks single- and
// multi-threaded and report the multithreading speedup — the paper's
// headline experiment in a dozen lines.
package main

import (
	"fmt"
	"log"

	"repro/sdsp"
)

func main() {
	const bench = "Matrix"

	// Single-threaded base case (paper §5: "it is essential to establish
	// a base case of superscalar operation at the outset").
	base := run(bench, 1)

	fmt.Printf("%-10s %10s %8s %10s\n", "threads", "cycles", "IPC", "speedup")
	fmt.Printf("%-10d %10d %8.2f %10s\n", 1, base.Cycles, base.IPC(), "—")
	for _, n := range []int{2, 4, 6} {
		st := run(bench, n)
		fmt.Printf("%-10d %10d %8.2f %9.1f%%\n",
			n, st.Cycles, st.IPC(), 100*sdsp.Speedup(st.Cycles, base.Cycles))
	}
}

func run(bench string, threads int) *sdsp.Stats {
	obj, err := sdsp.Workload(bench, sdsp.WorkloadParams{Threads: threads, PaperScale: true})
	if err != nil {
		log.Fatal(err)
	}
	st, err := sdsp.Run(obj, sdsp.DefaultConfig(threads))
	if err != nil {
		log.Fatal(err)
	}
	return st
}
