// Pipeline trace: watch two threads share the machine cycle by cycle.
// The trace shows the paper's mechanisms directly — interleaved fetch
// under True Round Robin, thread-blind issue, selective mispredict
// squash, and flexible commit.
package main

import (
	"fmt"
	"log"

	"repro/sdsp"
)

const src = `
; two threads, each summing its own range; thread 1's loop is longer
main:  tid  r1
       addi r2, r1, 2
       slli r2, r2, 2       ; iterations: 8 or 12
       addi r3, r0, 0
loop:  add  r3, r3, r2
       addi r2, r2, -1
       bne  r2, r0, loop
       slli r4, r1, 2
       li   r5, out
       add  r5, r5, r4
       sw   r3, 0(r5)
       halt
.data
out:   .space 8
`

func main() {
	obj, err := sdsp.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sdsp.DefaultConfig(2)
	m, err := sdsp.NewMachine(obj, cfg)
	if err != nil {
		log.Fatal(err)
	}

	const traceCycles = 30
	m.Trace = func(format string, args ...any) {
		if m.Now() <= traceCycles {
			fmt.Printf(format+"\n", args...)
		}
	}
	st, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...\n(total %d cycles, %d instructions, IPC %.2f, %d mispredicts)\n",
		st.Cycles, st.Committed, st.IPC(), st.Mispredicts)
	out, err := obj.Symbol("out")
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < 2; t++ {
		fmt.Printf("thread %d result: %d\n", t, m.Memory().LoadWord(out+uint32(t)*4))
	}
}
