// Cache study: direct-mapped vs 2-way set associative data cache as the
// number of resident threads grows (paper §5.3, Figures 7-8 and Table
// 3). Uses the workloads whose working sets exceed the 8 KB cache.
package main

import (
	"fmt"
	"log"

	"repro/sdsp"
)

func main() {
	for _, bench := range []string{"Matrix", "Sieve", "Laplace"} {
		fmt.Printf("\n%s:\n", bench)
		fmt.Printf("%-8s %12s %12s %10s %10s\n",
			"threads", "direct", "assoc", "hit% dir", "hit% asc")
		for _, n := range []int{1, 2, 4, 6} {
			obj, err := sdsp.Workload(bench, sdsp.WorkloadParams{Threads: n, PaperScale: true})
			if err != nil {
				log.Fatal(err)
			}
			var cyc [2]uint64
			var hit [2]float64
			for i, ways := range []int{1, 2} {
				cfg := sdsp.DefaultConfig(n)
				cfg.Cache.Ways = ways
				st, err := sdsp.Run(obj, cfg)
				if err != nil {
					log.Fatal(err)
				}
				cyc[i] = st.Cycles
				hit[i] = 100 * st.Cache.HitRate()
			}
			fmt.Printf("%-8d %12d %12d %9.1f%% %9.1f%%\n", n, cyc[0], cyc[1], hit[0], hit[1])
		}
	}
	fmt.Println("\nThe paper's finding: the associative cache wins overall, and its")
	fmt.Println("advantage grows with the number of threads contending for the sets.")
}
