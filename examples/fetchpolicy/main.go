// Fetch policy study: compare True Round Robin, Masked Round Robin and
// Conditional Switch (paper §5.1, Figures 3-4) on a synchronization-
// heavy workload (LL5, the cross-iteration recurrence) and a compute-
// heavy one (LL7), across thread counts.
package main

import (
	"fmt"
	"log"

	"repro/sdsp"
)

func main() {
	policies := []struct {
		name   string
		policy int
	}{
		{"TrueRR", int(sdsp.TrueRR)},
		{"MaskedRR", int(sdsp.MaskedRR)},
		{"CondSwitch", int(sdsp.CondSwitch)},
	}

	for _, bench := range []string{"LL5", "LL7"} {
		fmt.Printf("\n%s:\n%-12s", bench, "threads")
		for _, p := range policies {
			fmt.Printf("%12s", p.name)
		}
		fmt.Println()
		for _, n := range []int{2, 4, 6} {
			obj, err := sdsp.Workload(bench, sdsp.WorkloadParams{Threads: n, PaperScale: true})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12d", n)
			for _, p := range policies {
				cfg := sdsp.DefaultConfig(n)
				cfg.FetchPolicy = sdsp.TrueRR // overwritten below
				switch p.policy {
				case int(sdsp.MaskedRR):
					cfg.FetchPolicy = sdsp.MaskedRR
				case int(sdsp.CondSwitch):
					cfg.FetchPolicy = sdsp.CondSwitch
				}
				st, err := sdsp.Run(obj, cfg)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%12d", st.Cycles)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThe paper's finding: the three policies perform about the same,")
	fmt.Println("and True Round Robin is the simplest to implement (a modulo-N counter).")
}
