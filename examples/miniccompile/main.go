// The paper's toolchain flow, end to end: a MiniC program is compiled
// once per thread count — with the register budget the static partition
// leaves (128/N) — and simulated at that thread count, reproducing the
// headline multithreading-speedup experiment from source code rather
// than hand-written assembly.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/minic"
	"repro/sdsp"
)

// A parallel histogram-and-sum workload in MiniC.
const src = `
int n = 256;
float xs[256];
float sum;
float partial[6];
int buckets[8];
sync int lock;      // (unused; shows sync declarations)

void main() {
	int i; int lo; int hi; int b; float acc;
	lo = tid() * n / nth();
	hi = (tid() + 1) * n / nth();

	// Fill this thread's slice with a deterministic pattern.
	for (i = lo; i < hi; i = i + 1) {
		xs[i] = itof(i % 17) * 0.25 + 1.0;
	}
	barrier();

	// Per-thread partial sums.
	acc = 0.0;
	for (i = lo; i < hi; i = i + 1) {
		acc = acc + xs[i] * xs[i];
	}
	partial[tid()] = acc;
	barrier();

	if (tid() == 0) {
		acc = 0.0;
		for (i = 0; i < nth(); i = i + 1) { acc = acc + partial[i]; }
		sum = acc;
		for (i = 0; i < n; i = i + 1) {
			b = ftoi(xs[i]);
			if (b > 7) { b = 7; }
			buckets[b] = buckets[b] + 1;
		}
	}
}
`

func main() {
	fmt.Printf("%-8s %-6s %10s %8s %14s\n", "threads", "regs", "cycles", "IPC", "sum")
	var base uint64
	for _, n := range []int{1, 2, 4, 6} {
		regs := 128 / n // the paper's static register partition
		obj, err := minic.CompileToObject(src, minic.Options{Regs: regs})
		if err != nil {
			log.Fatal(err)
		}
		cfg := sdsp.DefaultConfig(n)
		m, err := sdsp.NewMachine(obj, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		sumAddr, err := obj.Symbol("sum")
		if err != nil {
			log.Fatal(err)
		}
		sum := math.Float32frombits(m.Memory().LoadWord(sumAddr))
		if n == 1 {
			base = st.Cycles
		}
		fmt.Printf("%-8d %-6d %10d %8.2f %14.3f   (%+.1f%%)\n",
			n, regs, st.Cycles, st.IPC(), sum, 100*sdsp.Speedup(st.Cycles, base))
	}
}
